"""Unit and integration tests for the cross-job ReuseStore.

Covers the store itself (policies, per-host isolation, versioned
invalidation, snapshot/restore, planner seeding) and its wiring into
the strategy layer (zero-cost probes, counters, stale entries never
served).
"""

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.operator import IndexOperator
from repro.core.reuse import (
    ReusePolicy,
    ReuseSession,
    ReuseStore,
    reuse_store_of,
)
from repro.core.strategy import GroupLookupReducer, LookupFn, make_carrier
from repro.indices.base import MappingIndex
from repro.indices.dynamic import DynamicComputedIndex
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import OutputCollector, TaskContext
from repro.simcluster.cluster import Cluster
from repro.simcluster.timemodel import TimeModel


@pytest.fixture
def cluster():
    return Cluster(num_nodes=3)


@pytest.fixture
def kv(cluster):
    store = DistributedKVStore("reuse-kv", cluster, service_time=2e-3)
    for i in range(50):
        store.put_unique(f"k{i}", i)
    return store


@pytest.fixture
def accessor(kv):
    return IndexAccessor(kv)


def ctx_on(cluster, node=0, task_id="t0"):
    return TaskContext(cluster.nodes[node], TimeModel(), task_id=task_id)


class TestReusePolicy:
    def test_defaults(self):
        p = ReusePolicy()
        assert p.admission == "always"
        assert p.eviction == "lru"
        assert p.capacity_per_host == 4096

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"admission": "sometimes"},
            {"eviction": "mru"},
            {"capacity_per_host": 0},
            {"min_admit_cost": -1.0},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            ReusePolicy(**kwargs)


class TestReuseStoreBasics:
    def test_probe_empty_misses(self, accessor):
        store = ReuseStore()
        hit, values, stale = store.probe("h0", accessor, "k1")
        assert (hit, values, stale) == (False, None, False)
        assert store.counts.misses == 1

    def test_admit_then_hit(self, accessor):
        store = ReuseStore()
        admitted, evicted = store.admit("h0", accessor, "k1", (1,), 2e-3)
        assert admitted and evicted == 0
        hit, values, stale = store.probe("h0", accessor, "k1")
        assert hit and values == (1,) and not stale
        assert store.counts.to_dict()["hits"] == 1

    def test_per_host_isolation(self, accessor):
        # A host only reuses results it fetched itself -- no simulated
        # network transfer is ever elided that was never paid for.
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 2e-3)
        hit, _, _ = store.probe("h1", accessor, "k1")
        assert not hit

    def test_len_counts_all_hosts(self, accessor):
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 2e-3)
        store.admit("h1", accessor, "k2", (2,), 2e-3)
        assert len(store) == 2

    def test_readmission_replaces_value(self, accessor):
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 2e-3)
        store.admit("h0", accessor, "k1", (7,), 2e-3)
        _, values, _ = store.probe("h0", accessor, "k1")
        assert values == (7,)
        assert len(store) == 1


class TestEviction:
    def policy(self, eviction):
        return ReusePolicy(eviction=eviction, capacity_per_host=2)

    def test_lru_evicts_least_recent(self, accessor):
        store = ReuseStore(self.policy("lru"))
        store.admit("h0", accessor, "a", (1,), 1.0)
        store.admit("h0", accessor, "b", (2,), 1.0)
        store.probe("h0", accessor, "a")  # refresh a
        _, evicted = store.admit("h0", accessor, "c", (3,), 1.0)
        assert evicted == 1
        assert store.probe("h0", accessor, "a")[0]
        assert not store.probe("h0", accessor, "b")[0]

    def test_freq_evicts_least_frequent(self, accessor):
        store = ReuseStore(self.policy("freq"))
        store.admit("h0", accessor, "a", (1,), 1.0)
        store.admit("h0", accessor, "b", (2,), 1.0)
        store.probe("h0", accessor, "a")
        store.probe("h0", accessor, "a")
        store.probe("h0", accessor, "b")
        # a: freq 3, b: freq 2 -> admitting c (freq 1) evicts b.
        store.admit("h0", accessor, "c", (3,), 1.0)
        assert store.probe("h0", accessor, "a")[0]
        assert not store.probe("h0", accessor, "b")[0]

    def test_freq_tiebreak_is_admission_order(self, accessor):
        store = ReuseStore(self.policy("freq"))
        store.admit("h0", accessor, "a", (1,), 1.0)
        store.admit("h0", accessor, "b", (2,), 1.0)
        store.admit("h0", accessor, "c", (3,), 1.0)  # all freq 1: a goes
        assert not store.probe("h0", accessor, "a")[0]
        assert store.probe("h0", accessor, "b")[0]
        assert store.probe("h0", accessor, "c")[0]


class TestCostAwareAdmission:
    def test_floor_rejects_cheap_results(self, accessor):
        store = ReuseStore(
            ReusePolicy(admission="cost-aware", min_admit_cost=1e-3)
        )
        admitted, _ = store.admit("h0", accessor, "cheap", (1,), 1e-4)
        assert not admitted
        assert store.counts.rejected == 1
        admitted, _ = store.admit("h0", accessor, "costly", (2,), 5e-3)
        assert admitted
        assert store.counts.admitted == 1

    def test_always_ignores_floor(self, accessor):
        store = ReuseStore(ReusePolicy(min_admit_cost=1e9))
        admitted, _ = store.admit("h0", accessor, "k", (1,), 0.0)
        assert admitted


class TestVersionedInvalidation:
    def test_kvstore_write_stales_entries(self, cluster, kv, accessor):
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 2e-3)
        kv.put("k99", "new")  # epoch bump
        hit, values, stale = store.probe("h0", accessor, "k1")
        assert not hit and stale and values is None
        assert store.counts.stale_drops == 1
        # The entry was dropped, not retained: a re-probe is a plain miss.
        hit, _, stale = store.probe("h0", accessor, "k1")
        assert not hit and not stale

    @pytest.mark.parametrize("mutate", ["put", "put_unique", "delete"])
    def test_every_kvstore_write_path_bumps_epoch(self, kv, mutate):
        before = kv.epoch
        if mutate == "put":
            kv.put("k0", "extra")
        elif mutate == "put_unique":
            kv.put_unique("fresh", 1)
        else:
            kv.delete("k0")
        assert kv.epoch > before

    def test_delete_of_absent_key_is_not_a_mutation(self, kv):
        before = kv.epoch
        assert not kv.delete("never-there")
        assert kv.epoch == before

    def test_dynamic_replace_compute_invalidates(self, cluster):
        index = DynamicComputedIndex("dyn", lambda k: [k * 2])
        accessor = IndexAccessor(index)
        store = ReuseStore()
        store.admit("h0", accessor, 3, (6,), 2e-3)
        index.replace_compute(lambda k: [k * 10])
        hit, _, stale = store.probe("h0", accessor, 3)
        assert not hit and stale

    def test_fingerprint_is_second_line_of_defence(self, cluster):
        # Out-of-band mutation that never touches the epoch still
        # invalidates, because the content fingerprint changed.
        class Fickle(MappingIndex):
            def fingerprint(self):
                return self._fp

        index = Fickle("fickle", {"k": [1]})
        index._fp = 1
        accessor = IndexAccessor(index)
        store = ReuseStore()
        store.admit("h0", accessor, "k", (1,), 1e-3)
        index._fp = 2
        hit, _, stale = store.probe("h0", accessor, "k")
        assert not hit and stale

    def test_explicit_invalidate(self, accessor, kv, cluster):
        other = IndexAccessor(
            DistributedKVStore("other", cluster, service_time=1e-3)
        )
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 1e-3)
        store.admit("h0", other, "k1", (2,), 1e-3)
        assert store.invalidate(accessor) == 1  # only that index's
        assert len(store) == 1
        assert store.invalidate() == 1  # everything
        assert len(store) == 0

    def test_purge_stale_reclaims_slots(self, kv, accessor):
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 1e-3)
        store.admit("h0", accessor, "k2", (2,), 1e-3)
        kv.put("k99", "bump")
        assert store.purge_stale(accessor) == 2
        assert len(store) == 0
        assert store.counts.stale_drops == 2


class TestPlannerSeeding:
    def test_seeded_hit_ratio_is_mean_over_hosts(self, accessor):
        store = ReuseStore()
        for i in range(10):
            store.admit("h0", accessor, f"k{i}", (i,), 1e-3)
        # 10 live entries on 1 of 4 hosts, 20 distinct keys expected:
        # (10/20 + 0 + 0 + 0) / 4
        assert store.seeded_hit_ratio(accessor, 20, 4) == pytest.approx(0.125)

    def test_seeded_hit_ratio_caps_per_host_at_one(self, accessor):
        store = ReuseStore()
        for i in range(30):
            store.admit("h0", accessor, f"k{i}", (i,), 1e-3)
        assert store.seeded_hit_ratio(accessor, 10, 1) == 1.0

    def test_seeded_hit_ratio_ignores_stale_and_foreign(
        self, kv, accessor, cluster
    ):
        other = IndexAccessor(
            DistributedKVStore("other", cluster, service_time=1e-3)
        )
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 1e-3)
        store.admit("h0", other, "x", (9,), 1e-3)
        kv.put("k99", "bump")  # stales accessor's entry only
        assert store.seeded_hit_ratio(accessor, 4, 1) == 0.0
        assert store.seeded_hit_ratio(other, 4, 1) == pytest.approx(0.25)

    def test_degenerate_inputs(self, accessor):
        store = ReuseStore()
        assert store.seeded_hit_ratio(accessor, 0, 4) == 0.0
        assert store.seeded_hit_ratio(accessor, 10, 0) == 0.0

    def test_live_entries(self, kv, accessor):
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 1e-3)
        store.admit("h1", accessor, "k2", (2,), 1e-3)
        assert store.live_entries(accessor) == 2
        assert store.live_entries(accessor, host="h0") == 1
        kv.put("k99", "bump")
        assert store.live_entries(accessor) == 0


class TestSnapshotRestore:
    def test_roundtrip_preserves_entries_and_counts(self, accessor):
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 1e-3)
        store.probe("h0", accessor, "k1")
        snap = store.snapshot()
        store.admit("h0", accessor, "k2", (2,), 1e-3)
        store.probe("h0", accessor, "missing")
        store.restore(snap)
        assert len(store) == 1
        assert store.counts.to_dict() == {
            "probes": 1, "hits": 1, "misses": 0, "stale_drops": 0,
            "admitted": 1, "rejected": 0, "evicted": 0,
        }

    def test_snapshot_is_deep(self, accessor):
        # Mutating the live store must not corrupt the snapshot (the
        # bench harness restores the same snapshot around traced
        # re-runs).
        store = ReuseStore()
        store.admit("h0", accessor, "k1", (1,), 1e-3)
        snap = store.snapshot()
        store.probe("h0", accessor, "k1")  # bumps the live entry's freq
        store.restore(snap)
        store.restore(snap)  # restoring twice from one snapshot works
        hit, values, _ = store.probe("h0", accessor, "k1")
        assert hit and values == (1,)


class TestSessionHandle:
    def test_session_builds_store_and_delegates(self, accessor):
        session = ReuseSession(ReusePolicy(eviction="freq"))
        assert session.store.policy.eviction == "freq"
        session.store.admit("h0", accessor, "k", (1,), 1e-3)
        assert session.counts.admitted == 1
        snap = session.snapshot()
        assert session.invalidate() == 1
        session.restore(snap)
        assert len(session.store) == 1

    def test_reuse_store_of_normalises(self):
        session = ReuseSession()
        store = ReuseStore()
        assert reuse_store_of(None) is None
        assert reuse_store_of(session) is session.store
        assert reuse_store_of(store) is store


class TestStrategyIntegration:
    """LookupFn / GroupLookupReducer against a shared store."""

    def carrier(self, key):
        return key, make_carrier("v", ((key,),), (None,))

    def fresh_fn(self, kv, store, **kwargs):
        op = IndexOperator("op").add_index(IndexAccessor(kv))
        return LookupFn(op, "op", 0, reuse=store, **kwargs), op

    def test_second_job_skips_fetch_and_charges_nothing(self, cluster, kv):
        store = ReuseStore()
        fn1, op1 = self.fresh_fn(kv, store)
        ctx1 = ctx_on(cluster)
        fn1.process(*self.carrier("k3"), OutputCollector(), ctx1)
        assert ctx1.charged_time > 0  # the fetch was paid for
        served = kv.lookups_served

        fn2, op2 = self.fresh_fn(kv, store)  # "next job": fresh operators
        ctx2 = ctx_on(cluster)
        col = OutputCollector()
        fn2.process(*self.carrier("k3"), col, ctx2)
        assert kv.lookups_served == served  # no fetch
        assert ctx2.charged_time == 0.0  # probes are zero-cost
        assert len(col.records) == 1
        assert ctx2.counters.group("reuse") == {"probes": 1.0, "hits": 1.0}

    def test_cold_store_charges_exactly_like_no_store(self, cluster, kv):
        ctx_without = ctx_on(cluster)
        fn0, _ = self.fresh_fn(kv, None)
        fn0.process(*self.carrier("k5"), OutputCollector(), ctx_without)

        ctx_with = ctx_on(cluster)
        fn1, _ = self.fresh_fn(kv, ReuseStore())
        fn1.process(*self.carrier("k5"), OutputCollector(), ctx_with)
        assert ctx_with.charged_time == ctx_without.charged_time

    def test_stale_entry_refetches_fresh_values(self, cluster, kv):
        store = ReuseStore()
        fn1, _ = self.fresh_fn(kv, store)
        fn1.process(*self.carrier("k3"), OutputCollector(), ctx_on(cluster))
        kv.delete("k3")
        kv.put_unique("k3", "fresh")

        fn2, _ = self.fresh_fn(kv, store)
        ctx = ctx_on(cluster)
        col = OutputCollector()
        fn2.process(*self.carrier("k3"), col, ctx)
        counters = ctx.counters.group("reuse")
        assert counters["stale_drops"] == 1.0
        assert counters["misses"] == 1.0
        _v, _ikl, ivl = col.records[0][1][1], None, None
        # The emitted result is the fresh value, never the stale one.
        from repro.core.strategy import open_carrier

        _v1, _ikl, ivl = open_carrier(col.records[0][1])
        assert ivl == ((("fresh",),),)

    def test_cache_mode_admits_on_lru_miss_only(self, cluster, kv):
        store = ReuseStore()
        fn, _ = self.fresh_fn(kv, store, use_cache=True)
        ctx = ctx_on(cluster)
        col = OutputCollector()
        fn.process(*self.carrier("k3"), col, ctx)  # LRU miss -> fetch+admit
        fn.process(*self.carrier("k3"), col, ctx)  # LRU hit -> no probe
        counters = ctx.counters.group("reuse")
        assert counters["probes"] == 1.0
        assert counters["misses"] == 1.0
        assert store.counts.admitted == 1

    def test_group_reducer_reuses_across_jobs(self, cluster, kv):
        store = ReuseStore()

        def fresh_reducer():
            op = IndexOperator("op").add_index(IndexAccessor(kv))
            return GroupLookupReducer(op, "op", 0, reuse=store)

        carriers = [("o", make_carrier("v", (("k4",),), (None,)))]
        red1 = fresh_reducer()
        red1.reduce("k4", carriers, OutputCollector(), ctx_on(cluster))
        served = kv.lookups_served

        red2 = fresh_reducer()
        ctx = ctx_on(cluster)
        col = OutputCollector()
        red2.reduce("k4", carriers, col, ctx)
        assert kv.lookups_served == served
        assert ctx.charged_time == 0.0
        assert len(col.records) == 1

    def test_reuse_is_per_host(self, cluster, kv):
        store = ReuseStore()
        fn1, _ = self.fresh_fn(kv, store)
        fn1.process(*self.carrier("k3"), OutputCollector(), ctx_on(cluster, 0))
        served = kv.lookups_served
        fn2, _ = self.fresh_fn(kv, store)
        ctx_other = ctx_on(cluster, 1)  # a different host: must fetch
        fn2.process(*self.carrier("k3"), OutputCollector(), ctx_other)
        assert kv.lookups_served == served + 1
