"""The PARTIAL hybrid strategy and the build gates, end to end: planner
eligibility under partial coverage, coverage-blended costs, scan-assisted
execution, warming trajectories, and the full-coverage/prebuilt
equivalence contract."""

import pytest

from repro.core.costmodel import (
    DEFAULT_SCAN_MULTIPLIER,
    CostEnv,
    Placement,
    Strategy,
    cost_cache,
    cost_partial,
    scan_lookup_time,
)
from repro.core.optimizer import eligible_strategies
from repro.core.statistics import IndexStats, OperatorStats
from repro.indices.build import BuildSession


def _stats(coverage):
    op = OperatorStats(n1=1000.0)
    op.per_index[0] = IndexStats(nik=1.0, theta=4.0, build_coverage=coverage)
    return op


def _env():
    return CostEnv(
        bw=100e6, f=0.3, t_cache=1e-6, extra_job_overhead=3.0, latency=1e-4
    )


class TestPartialPlanning:
    @pytest.mark.parametrize("coverage", [0.25, 0.5, 0.99])
    def test_partial_replaces_cache_while_building(self, coverage):
        out = eligible_strategies(
            _stats(coverage), 0, supports_locality=False, allow_extra_job=True
        )
        assert Strategy.PARTIAL in out
        assert Strategy.CACHE not in out
        assert Strategy.BASELINE in out

    @pytest.mark.parametrize("coverage", [0.0, 1.0])
    def test_boundary_coverage_keeps_pre_build_set(self, coverage):
        out = eligible_strategies(
            _stats(coverage), 0, supports_locality=False, allow_extra_job=True
        )
        assert Strategy.CACHE in out
        assert Strategy.PARTIAL not in out

    def test_non_idempotent_still_pins_baseline(self):
        out = eligible_strategies(
            _stats(0.5),
            0,
            supports_locality=False,
            allow_extra_job=True,
            idempotent=False,
        )
        assert out == [Strategy.BASELINE]

    def test_cost_partial_degenerates_to_cache_at_full_coverage(self):
        env, op = _env(), _stats(1.0)
        idx = op.index(0)
        assert cost_partial(env, op, idx, Placement.BEFORE_MAP) == cost_cache(
            env, op, idx
        )

    def test_cost_partial_is_scan_cost_at_zero_coverage(self):
        env, op = _env(), _stats(0.0)
        idx = op.index(0)
        expected = op.n1 * idx.nik * scan_lookup_time(env, idx)
        assert cost_partial(env, op, idx, Placement.BEFORE_MAP) == pytest.approx(
            expected
        )

    def test_cost_partial_monotone_in_coverage(self):
        env = _env()
        costs = [
            cost_partial(
                env, _stats(c), _stats(c).index(0), Placement.BEFORE_MAP
            )
            for c in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[0] > costs[-1]

    def test_unsampled_scan_uses_default_multiplier(self):
        env, op = _env(), _stats(0.5)
        idx = op.index(0)
        assert idx.build_scan_tj == 0.0
        slow = scan_lookup_time(env, idx)
        fast = (idx.sik + idx.siv) / env.lookup_bw + env.latency + idx.tj
        assert slow - fast == pytest.approx(
            (DEFAULT_SCAN_MULTIPLIER - 1.0) * idx.tj
        )


def _run(env, session, name, strategy=Strategy.CACHE, mode="forced", obs=None):
    env.kv.reset_accounting()
    runner = env.runner(build=session, obs=obs)
    if mode == "forced":
        return runner.run(
            env.make_job(name), mode="forced", forced_strategy=strategy
        )
    return runner.run(env.make_job(name), mode=mode)


class TestBuildGatesExecution:
    def test_zero_coverage_scans_everything(self, efind_env):
        session = BuildSession({efind_env.kv.name: efind_env.kv})
        result = _run(efind_env, session, "scan-all")
        build = result.counters.group("build")
        assert build["unindexed_lookups"] == efind_env.num_records
        assert build.get("indexed_lookups", 0) == 0
        assert build["scan_seconds"] > 0
        # The builder piggybacked on the same job.
        assert build["records_indexed"] > 0
        assert build["build_seconds"] > 0

    def test_output_identical_to_unbuilt_run(self, efind_env):
        plain = _run(efind_env, None, "plain")
        session = BuildSession({efind_env.kv.name: efind_env.kv})
        partial = _run(efind_env, session, "gated")
        assert sorted(partial.output) == sorted(plain.output)

    def test_forced_partial_matches_forced_cache(self, efind_env):
        mk = lambda: BuildSession({efind_env.kv.name: efind_env.kv})
        sess_a, sess_b = mk(), mk()
        sess_a.manager.advance(efind_env.kv.name, 0.5)
        sess_b.manager.advance(efind_env.kv.name, 0.5)
        cache = _run(efind_env, sess_a, "half-cache", Strategy.CACHE)
        partial = _run(efind_env, sess_b, "half-partial", Strategy.PARTIAL)
        assert sorted(partial.output) == sorted(cache.output)
        assert partial.sim_time == cache.sim_time

    def test_full_coverage_run_equals_prebuilt_exactly(self, efind_env):
        """The acceptance contract: a session at 100% coverage is
        indistinguishable -- plan, counters, simulated time -- from no
        build subsystem at all."""
        prebuilt = _run(efind_env, None, "pre")
        session = BuildSession({efind_env.kv.name: efind_env.kv})
        session.manager.complete(efind_env.kv.name)
        built = _run(efind_env, session, "pre")  # same name: same schedule
        assert built.sim_time == prebuilt.sim_time
        assert sorted(built.output) == sorted(prebuilt.output)
        # Only the free coverage telemetry remains; nothing cost-bearing.
        build = built.counters.group("build")
        assert set(build) == {"indexed_lookups"}

    def test_full_coverage_dynamic_run_equals_prebuilt_exactly(self, efind_env):
        prebuilt = _run(efind_env, None, "dyn", mode="dynamic")
        session = BuildSession({efind_env.kv.name: efind_env.kv})
        session.manager.complete(efind_env.kv.name)
        built = _run(efind_env, session, "dyn", mode="dynamic")
        assert built.sim_time == prebuilt.sim_time
        assert sorted(built.output) == sorted(prebuilt.output)

    def test_scans_cost_more_than_indexed_lookups(self, efind_env):
        empty = BuildSession({efind_env.kv.name: efind_env.kv})
        full = BuildSession({efind_env.kv.name: efind_env.kv})
        full.manager.complete(efind_env.kv.name)
        unbuilt = _run(efind_env, empty, "slow")
        covered = _run(efind_env, full, "fast")
        assert unbuilt.sim_time > covered.sim_time

    def test_warming_trajectory_converges_and_speeds_up(self, efind_env):
        """Three jobs at fraction 1/3 walk coverage 0 -> 1/3 -> 2/3 -> 1
        with strictly decreasing scan counts and lookup+scan time."""
        kv = efind_env.kv
        session = BuildSession({kv.name: kv}, fraction=1.0 / 3.0)
        scans, times = [], []
        for i, want in enumerate((0.0, 1 / 3, 2 / 3)):
            assert session.coverage(kv.name) == pytest.approx(want)
            result = _run(efind_env, session, f"warm-{i}")
            scans.append(
                result.counters.group("build").get("unindexed_lookups", 0)
            )
            times.append(result.sim_time)
        assert session.coverage(kv.name) == 1.0
        assert scans[0] > scans[1] > scans[2] > 0
        assert times[0] > times[1] > times[2]
        # Converged: the next run neither scans nor builds.
        final = _run(efind_env, session, "warm-done")
        build = final.counters.group("build")
        assert build.get("unindexed_lookups", 0) == 0
        assert build.get("build_seconds", 0.0) == 0.0
        assert build.get("scan_seconds", 0.0) == 0.0

    def test_coverage_frozen_within_a_job(self, efind_env):
        """Coverage only commits at the job boundary, so one job's scan
        count matches its entry coverage exactly."""
        kv = efind_env.kv
        session = BuildSession({kv.name: kv}, fraction=1.0)
        result = _run(efind_env, session, "freeze")
        # Entered at 0 coverage: every lookup scanned even though the
        # job itself built the whole index.
        build = result.counters.group("build")
        assert build["unindexed_lookups"] == efind_env.num_records
        assert session.coverage(kv.name) == 1.0


class TestPartialAudit:
    def test_adaptive_audit_carries_build_state(self, efind_env):
        from repro.obs import Observability

        kv = efind_env.kv
        session = BuildSession({kv.name: kv}, fraction=1.0 / 3.0)
        session.manager.advance(kv.name, 1.0 / 3.0)
        result = _run(
            efind_env, session, "audited", mode="dynamic", obs=Observability()
        )
        evaluated = [r for r in result.audit if r.operators]
        assert evaluated, "expected at least one stable-stats evaluation"
        for record in evaluated:
            for op in record.operators:
                for sample in op["samples"].values():
                    assert sample["build_coverage"] == pytest.approx(1 / 3)
                    assert "build_debt" in sample
                for table in op["strategies"].values():
                    assert "partial" in table["costs"]
                    assert "partial" in table["eligible"]
                    assert "cache" not in table["eligible"]

    def test_explain_reports_partial_coverage(self, efind_env):
        from repro.core.explain import explain

        kv = efind_env.kv
        session = BuildSession({kv.name: kv})
        session.manager.advance(kv.name, 0.5)
        runner = efind_env.runner(build=session)
        job = efind_env.make_job("exp")
        result = runner.run(job, mode="forced", forced_strategy=Strategy.CACHE)
        text = explain(
            efind_env.make_job("exp"), runner=runner, result=result
        )
        assert "build coverage:" in text
        assert "build.*:" in text

    def test_rebuild_invalidates_reuse_store(self, efind_env):
        from repro.core.reuse import ReuseSession

        kv = efind_env.kv
        reuse = ReuseSession()
        build = BuildSession({kv.name: kv})
        build.manager.complete(kv.name)

        def run(name):
            efind_env.kv.reset_accounting()
            runner = efind_env.runner(build=build, reuse=reuse)
            return runner.run(
                efind_env.make_job(name),
                mode="forced",
                forced_strategy=Strategy.CACHE,
            )

        run("seed")
        warm = run("warm")
        assert warm.counters.group("reuse")["hits"] > 0
        build.rebuild(kv.name)
        build.manager.complete(kv.name)  # contents unchanged, epoch bumped
        stale = run("stale")
        assert stale.counters.group("reuse").get("hits", 0) == 0
        assert stale.counters.group("reuse")["stale_drops"] > 0
