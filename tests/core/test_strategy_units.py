"""Unit tests for the individual strategy chained-functions."""

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.operator import IndexOperator
from repro.core.statistics import OperatorStatsAccumulator
from repro.core.strategy import (
    CarrierMaterializeReducer,
    GroupLookupReducer,
    KeyByIkFn,
    LookupFn,
    PostProcessFn,
    PreProcessFn,
    RecordMeter,
    SchemePartitioner,
    is_carrier,
    make_carrier,
    open_carrier,
)
from repro.indices.base import MappingIndex
from repro.indices.partitioning import HashPartitionScheme, round_robin_placements
from repro.mapreduce.api import OutputCollector, TaskContext
from repro.simcluster.cluster import Cluster
from repro.simcluster.timemodel import TimeModel


@pytest.fixture
def ctx():
    cluster = Cluster(num_nodes=2)
    return TaskContext(cluster.nodes[0], TimeModel(), task_id="t0")


@pytest.fixture
def op():
    index = MappingIndex("m", {f"k{i}": [i] for i in range(100)}, service_time=1e-3)
    return IndexOperator("unit-op").add_index(IndexAccessor(index))


class TestCarrierFormat:
    def test_roundtrip(self):
        c = make_carrier("v", (("k",),), (None,))
        assert is_carrier(c)
        assert open_carrier(c) == ("v", (("k",),), (None,))

    def test_not_a_carrier(self):
        assert not is_carrier(("x", "y"))
        with pytest.raises(TypeError):
            open_carrier(("x", "y"))


class TestPreProcessFn(object):
    def test_wraps_in_carrier(self, op, ctx):
        fn = PreProcessFn(op, "op0")
        col = OutputCollector()
        fn.process("k5", "payload", col, ctx)
        ((key, value),) = col.records
        assert key == "k5"
        v1, ikl, ivl = open_carrier(value)
        assert v1 == "payload"
        assert ikl == (("k5",),)
        assert ivl == (None,)

    def test_collects_statistics(self, op, ctx):
        acc = OperatorStatsAccumulator("op0", 1, 2)
        fn = PreProcessFn(op, "op0", acc)
        col = OutputCollector()
        for i in range(10):
            fn.process(f"k{i}", i, col, ctx)
        sample = acc.sample_for("t0")
        assert sample.n1 == 10
        assert sample.nik[0] == 10
        assert sample.spre_bytes > 0


class TestLookupFnModes:
    def _carrier_for(self, key):
        return (key, make_carrier("v", ((key,),), (None,)))

    def test_baseline_fills_results(self, op, ctx):
        fn = LookupFn(op, "op0", 0)
        col = OutputCollector()
        k, c = self._carrier_for("k3")
        fn.process(k, c, col, ctx)
        _v1, _ikl, ivl = open_carrier(col.records[0][1])
        assert ivl == (((3,),),)

    def test_baseline_charges_time(self, op, ctx):
        fn = LookupFn(op, "op0", 0)
        col = OutputCollector()
        fn.process(*self._carrier_for("k3"), col, ctx)
        assert ctx.charged_time >= 1e-3

    def test_cache_mode_saves_second_lookup(self, op, ctx):
        fn = LookupFn(op, "op0", 0, use_cache=True)
        col = OutputCollector()
        fn.process(*self._carrier_for("k3"), col, ctx)
        served = op.accessors[0].index.lookups_served
        fn.process(*self._carrier_for("k3"), col, ctx)
        assert op.accessors[0].index.lookups_served == served
        assert len(col.records) == 2

    def test_dedup_adjacent_memo(self, op, ctx):
        fn = LookupFn(op, "op0", 0, dedup_adjacent=True)
        col = OutputCollector()
        fn.start(ctx)
        for _ in range(5):
            fn.process(*self._carrier_for("k7"), col, ctx)
        assert op.accessors[0].index.lookups_served == 1

    def test_memo_resets_per_task(self, op, ctx):
        fn = LookupFn(op, "op0", 0, dedup_adjacent=True)
        col = OutputCollector()
        fn.start(ctx)
        fn.process(*self._carrier_for("k7"), col, ctx)
        fn.start(ctx)  # new task
        fn.process(*self._carrier_for("k7"), col, ctx)
        assert op.accessors[0].index.lookups_served == 2

    def test_assume_local_charges_service_only(self, op, ctx):
        fn = LookupFn(op, "op0", 0, assume_local=True)
        col = OutputCollector()
        fn.process(*self._carrier_for("k3"), col, ctx)
        assert ctx.charged_time == pytest.approx(1e-3)

    def test_missing_key_empty_result(self, op, ctx):
        fn = LookupFn(op, "op0", 0)
        col = OutputCollector()
        fn.process(*self._carrier_for("nope"), col, ctx)
        _v1, _ikl, ivl = open_carrier(col.records[0][1])
        assert ivl == (((),),)

    def test_record_with_no_keys_skips_lookup(self, op, ctx):
        fn = LookupFn(op, "op0", 0)
        col = OutputCollector()
        carrier = make_carrier("v", ((),), (None,))
        fn.process("k", carrier, col, ctx)
        assert op.accessors[0].index.lookups_served == 0


class TestPostProcessFn:
    def test_default_post_emits(self, op, ctx):
        fn = PostProcessFn(op, "op0")
        col = OutputCollector()
        carrier = make_carrier("v", (("k3",),), (((3,),),))
        fn.process("k3", carrier, col, ctx)
        assert col.records == [("k3", ("v", (3,)))]

    def test_records_spost(self, op, ctx):
        acc = OperatorStatsAccumulator("op0", 1, 2)
        fn = PostProcessFn(op, "op0", acc)
        col = OutputCollector()
        fn.process("k3", make_carrier("v", (("k3",),), (((3,),),)), col, ctx)
        assert acc.sample_for("t0").spost_bytes > 0


class TestKeyByIkFn:
    def test_rekeys_by_lookup_key(self, op, ctx):
        fn = KeyByIkFn(op, "op0", 0)
        col = OutputCollector()
        carrier = make_carrier("v", (("k9",),), (None,))
        fn.process("orig", carrier, col, ctx)
        ((key, value),) = col.records
        assert key == "k9"
        assert value == ("orig", carrier)

    def test_no_key_routes_to_none(self, op, ctx):
        fn = KeyByIkFn(op, "op0", 0)
        col = OutputCollector()
        fn.process("orig", make_carrier("v", ((),), (None,)), col, ctx)
        assert col.records[0][0] is None

    def test_multiple_keys_rejected(self, op, ctx):
        fn = KeyByIkFn(op, "op0", 0)
        col = OutputCollector()
        carrier = make_carrier("v", (("a", "b"),), (None,))
        with pytest.raises(ValueError):
            fn.process("orig", carrier, col, ctx)


class TestGroupLookupReducer:
    def test_one_lookup_per_group(self, op, ctx):
        red = GroupLookupReducer(op, "op0", 0)
        col = OutputCollector()
        carriers = [
            (f"orig{i}", make_carrier(f"v{i}", (("k2",),), (None,)))
            for i in range(6)
        ]
        red.reduce("k2", carriers, col, ctx)
        assert op.accessors[0].index.lookups_served == 1
        assert len(col.records) == 6
        for (key, value), i in zip(col.records, range(6)):
            assert key == f"orig{i}"
            _v, _ikl, ivl = open_carrier(value)
            assert ivl == (((2,),),)

    def test_none_group_no_lookup(self, op, ctx):
        red = GroupLookupReducer(op, "op0", 0)
        col = OutputCollector()
        carriers = [("o", make_carrier("v", ((),), (None,)))]
        red.reduce(None, carriers, col, ctx)
        assert op.accessors[0].index.lookups_served == 0
        _v, _ikl, ivl = open_carrier(col.records[0][1])
        assert ivl == ((),)


class TestMaterializeReducer:
    def test_passthrough_preserves_grouping(self, ctx):
        red = CarrierMaterializeReducer()
        col = OutputCollector()
        red.reduce("ik", [("a", 1), ("b", 2)], col, ctx)
        assert col.records == [("a", 1), ("b", 2)]


class TestSchemePartitioner:
    def test_uses_index_scheme(self):
        scheme = HashPartitionScheme(
            8, round_robin_placements(["h0", "h1", "h2"], 8, 2)
        )
        p = SchemePartitioner(scheme)
        for key in range(50):
            assert p.partition(key, 8) == scheme.partition_of(key)

    def test_none_key_goes_to_zero(self):
        scheme = HashPartitionScheme(4, round_robin_placements(["h0"], 4, 1))
        assert SchemePartitioner(scheme).partition(None, 4) == 0


class TestRecordMeter:
    def test_reports_counts_and_bytes(self, ctx):
        seen = {}
        meter = RecordMeter(lambda n, b: seen.update(n=n, b=b))
        col = OutputCollector()
        meter.start(ctx)
        meter.process("k", "vvvv", col, ctx)
        meter.process("k", "vvvv", col, ctx)
        meter.finish(col, ctx)
        assert seen["n"] == 2
        assert seen["b"] == 2 * (1 + 4)
        assert len(col.records) == 2
