"""Unit tests for the plan optimizer (FullEnumerate / k-Repart)."""

import pytest

from repro.core.costmodel import CostEnv, Placement, Strategy
from repro.core.optimizer import (
    baseline_plan,
    best_strategy_for_index,
    eligible_strategies,
    forced_plan,
    full_enumerate,
    k_repart,
    optimize_job,
    optimize_operator,
    plan_cost,
)
from repro.core.statistics import IndexStats, OperatorStats


@pytest.fixture
def env():
    return CostEnv(bw=125e6, f=3e-8, t_cache=2e-6, extra_job_overhead=1.0)


def stats_with(indices):
    op = OperatorStats(n1=50_000, s1=100, spre=120, sidx=200, spost=80, smap=70)
    for j, idx in enumerate(indices):
        op.per_index[j] = idx
    return op


HOT_CACHE = IndexStats(nik=1.0, sik=8, siv=64, tj=1e-3, miss_ratio=0.05, theta=4)
NO_LOCALITY = IndexStats(nik=1.0, sik=8, siv=64, tj=1e-3, miss_ratio=1.0, theta=1.0)
HIGH_DUP = IndexStats(nik=1.0, sik=8, siv=64, tj=1e-3, miss_ratio=1.0, theta=100.0)
BIG_RESULT = IndexStats(nik=1.0, sik=8, siv=30_000, tj=1e-3, miss_ratio=1.0, theta=2.0)


class TestEligibility:
    def test_baseline_cache_always_eligible(self):
        op = stats_with([NO_LOCALITY])
        strategies = eligible_strategies(op, 0, False, allow_extra_job=False)
        assert strategies == [Strategy.BASELINE, Strategy.CACHE]

    def test_repart_requires_single_key(self):
        op = stats_with([IndexStats(nik=3.0)])
        strategies = eligible_strategies(op, 0, True, allow_extra_job=True)
        assert Strategy.REPART not in strategies

    def test_idxloc_requires_locality(self):
        op = stats_with([HIGH_DUP])
        with_loc = eligible_strategies(op, 0, True, allow_extra_job=True)
        without = eligible_strategies(op, 0, False, allow_extra_job=True)
        assert Strategy.IDXLOC in with_loc
        assert Strategy.IDXLOC not in without


class TestSingleIndexChoice:
    def test_hot_cache_picks_cache(self, env):
        op = stats_with([HOT_CACHE])
        strategy, _ = best_strategy_for_index(
            env, op, 0, Placement.BEFORE_MAP, True, True
        )
        assert strategy is Strategy.CACHE

    def test_high_duplication_picks_repart(self, env):
        op = stats_with([HIGH_DUP])
        strategy, _ = best_strategy_for_index(
            env, op, 0, Placement.BEFORE_MAP, False, True
        )
        assert strategy is Strategy.REPART

    def test_no_redundancy_picks_baseline_or_cache(self, env):
        op = stats_with([NO_LOCALITY])
        strategy, _ = best_strategy_for_index(
            env, op, 0, Placement.BEFORE_MAP, True, True
        )
        assert strategy in (Strategy.BASELINE, Strategy.CACHE)

    def test_big_results_pick_idxloc(self, env):
        op = stats_with([BIG_RESULT])
        strategy, _ = best_strategy_for_index(
            env, op, 0, Placement.BEFORE_MAP, True, True
        )
        assert strategy is Strategy.IDXLOC


class TestFullEnumerate:
    def test_single_index(self, env):
        op = stats_with([HIGH_DUP])
        plan = full_enumerate(env, op, Placement.BEFORE_MAP, [True], "op")
        assert plan.order == [0]
        assert plan.strategies[0] is Strategy.REPART

    def test_property4_extra_job_indices_first(self, env):
        op = stats_with([NO_LOCALITY, HIGH_DUP])
        plan = full_enumerate(env, op, Placement.BEFORE_MAP, [False, False], "op")
        strategies_in_order = [plan.strategies[j] for j in plan.order]
        seen_cheap = False
        for s in strategies_in_order:
            if s in (Strategy.BASELINE, Strategy.CACHE):
                seen_cheap = True
            else:
                assert not seen_cheap, "extra-job strategy after baseline/cache"

    def test_cost_is_sum_of_plan(self, env):
        op = stats_with([HOT_CACHE, HIGH_DUP])
        plan = full_enumerate(env, op, Placement.BEFORE_MAP, [True, True], "op")
        assert plan.estimated_cost == pytest.approx(plan_cost(env, op, plan))

    def test_empty_operator(self, env):
        plan = full_enumerate(env, stats_with([]), Placement.BEFORE_MAP, [], "op")
        assert plan.order == [] and plan.estimated_cost == 0.0

    def test_three_indices_all_covered(self, env):
        op = stats_with([HOT_CACHE, HIGH_DUP, NO_LOCALITY])
        plan = full_enumerate(
            env, op, Placement.BEFORE_MAP, [True, True, True], "op"
        )
        assert sorted(plan.order) == [0, 1, 2]
        assert set(plan.strategies) == {0, 1, 2}


class TestKRepart:
    def test_never_worse_than_forced_cache(self, env):
        op = stats_with([HIGH_DUP, HOT_CACHE, NO_LOCALITY])
        plan = k_repart(env, op, Placement.BEFORE_MAP, [False] * 3, "op", k=1)
        all_cache = forced_plan({"op": (Placement.BEFORE_MAP, 3)}, Strategy.CACHE)
        assert plan.estimated_cost <= plan_cost(
            env, op, all_cache.operators["op"]
        ) + 1e-9

    def test_k_zero_means_no_extra_jobs(self, env):
        op = stats_with([HIGH_DUP, HIGH_DUP])
        plan = k_repart(env, op, Placement.BEFORE_MAP, [False, False], "op", k=0)
        assert all(
            s in (Strategy.BASELINE, Strategy.CACHE)
            for s in plan.strategies.values()
        )

    def test_matches_full_enumerate_with_k_equal_m(self, env):
        op = stats_with([HIGH_DUP, HOT_CACHE])
        full = full_enumerate(env, op, Placement.BEFORE_MAP, [True, True], "op")
        kr = k_repart(env, op, Placement.BEFORE_MAP, [True, True], "op", k=2)
        assert kr.estimated_cost == pytest.approx(full.estimated_cost)


class TestOptimizeOperator:
    def test_small_m_uses_full_enumerate(self, env):
        op = stats_with([HIGH_DUP] * 3)
        plan = optimize_operator(env, op, Placement.BEFORE_MAP, [True] * 3, "op")
        assert len(plan.order) == 3

    def test_large_m_falls_back_to_k_repart(self, env):
        m = 7
        op = stats_with([HOT_CACHE] * m)
        plan = optimize_operator(
            env, op, Placement.BEFORE_MAP, [True] * m, "op", k=1
        )
        assert sorted(plan.order) == list(range(m))


class TestPlanBuilders:
    def test_baseline_plan(self):
        plan = baseline_plan({"a": (Placement.BEFORE_MAP, 2)})
        assert plan.operators["a"].strategies == {
            0: Strategy.BASELINE,
            1: Strategy.BASELINE,
        }

    def test_forced_plan_uniform(self):
        plan = forced_plan({"a": (Placement.BEFORE_MAP, 1)}, Strategy.CACHE)
        assert plan.operators["a"].strategies[0] is Strategy.CACHE

    def test_forced_repart_targets_only(self):
        plan = forced_plan(
            {"a": (Placement.BEFORE_MAP, 1), "b": (Placement.BEFORE_MAP, 1)},
            Strategy.REPART,
            extra_job_targets=["a"],
        )
        assert plan.operators["a"].strategies[0] is Strategy.REPART
        assert plan.operators["b"].strategies[0] is Strategy.CACHE

    def test_optimize_job_sums_costs(self, env):
        per_op = {
            "a": (stats_with([HOT_CACHE]), Placement.BEFORE_MAP, [True]),
            "b": (stats_with([HIGH_DUP]), Placement.BETWEEN_MAP_REDUCE, [False]),
        }
        plan = optimize_job(env, per_op)
        assert plan.estimated_cost == pytest.approx(
            plan.operators["a"].estimated_cost + plan.operators["b"].estimated_cost
        )

    def test_plan_equality_helpers(self):
        a = forced_plan({"a": (Placement.BEFORE_MAP, 1)}, Strategy.CACHE)
        b = forced_plan({"a": (Placement.BEFORE_MAP, 1)}, Strategy.CACHE)
        c = forced_plan({"a": (Placement.BEFORE_MAP, 1)}, Strategy.BASELINE)
        assert a.same_strategies(b)
        assert not a.same_strategies(c)
