"""Unit tests for the plan compiler (stage structure + boundaries)."""

import pytest

from repro.common.errors import PlanningError
from repro.core.compiler import choose_boundary, compile_plan
from repro.core.costmodel import Placement, Strategy
from repro.core.optimizer import forced_plan
from repro.core.statistics import OperatorStats
from repro.core.strategy import (
    CarrierMaterializeReducer,
    GroupLookupReducer,
    SchemePartitioner,
)


def specs_of(job):
    return job.operator_specs()


class TestChooseBoundary:
    def test_idxloc_always_pre(self):
        stats = OperatorStats(spre=1, sidx=0.1, spost=0.01)
        assert choose_boundary(Strategy.IDXLOC, stats, True) == "pre"

    def test_default_without_stats(self):
        assert choose_boundary(Strategy.REPART, None, True) == "idx"

    def test_min_size_wins(self):
        assert (
            choose_boundary(
                Strategy.REPART, OperatorStats(spre=10, sidx=99, spost=99), True
            )
            == "pre"
        )
        assert (
            choose_boundary(
                Strategy.REPART, OperatorStats(spre=99, sidx=10, spost=99), True
            )
            == "idx"
        )
        assert (
            choose_boundary(
                Strategy.REPART, OperatorStats(spre=99, sidx=99, spost=10), True
            )
            == "post"
        )

    def test_post_needs_last_index(self):
        stats = OperatorStats(spre=99, sidx=99, spost=10)
        assert choose_boundary(Strategy.REPART, stats, False) in ("pre", "idx")

    def test_override_respected(self):
        stats = OperatorStats(spre=1, sidx=99, spost=99)
        assert choose_boundary(Strategy.REPART, stats, True, override="idx") == "idx"

    def test_override_post_requires_last(self):
        with pytest.raises(PlanningError):
            choose_boundary(Strategy.REPART, None, False, override="post")


class TestStageStructure:
    def test_baseline_single_stage(self, efind_env):
        job = efind_env.make_job("c1")
        plan = forced_plan(specs_of(job), Strategy.BASELINE)
        stages = compile_plan(job, plan, efind_env.cluster)
        assert len(stages) == 1
        conf = stages[0].conf
        names = [fn.name for fn in conf.map_chain]
        assert names[0].startswith("pre[")
        assert any(n.startswith("idx[") for n in names)
        assert any(n.startswith("post[") for n in names)
        assert conf.reducer is not None

    def test_cache_single_stage_with_cache_mode(self, efind_env):
        job = efind_env.make_job("c2")
        plan = forced_plan(specs_of(job), Strategy.CACHE)
        stages = compile_plan(job, plan, efind_env.cluster)
        assert any(":cache]" in fn.name for fn in stages[0].conf.map_chain)

    def test_repart_head_two_stages(self, efind_env):
        job = efind_env.make_job("c3")
        plan = forced_plan(specs_of(job), Strategy.REPART, ["head0"])
        stages = compile_plan(job, plan, efind_env.cluster)
        assert len(stages) == 2
        assert stages[0].is_shuffle
        assert isinstance(stages[0].conf.reducer, GroupLookupReducer)

    def test_repart_pre_boundary_materializes(self, efind_env):
        job = efind_env.make_job("c4")
        plan = forced_plan(specs_of(job), Strategy.REPART, ["head0"])
        stages = compile_plan(
            job, plan, efind_env.cluster, boundary_override="pre"
        )
        assert isinstance(stages[0].conf.reducer, CarrierMaterializeReducer)
        lookup_names = [fn.name for fn in stages[1].conf.map_chain]
        assert any(":repart]" in n for n in lookup_names)

    def test_repart_post_boundary_pulls_post(self, efind_env):
        job = efind_env.make_job("c5")
        plan = forced_plan(specs_of(job), Strategy.REPART, ["head0"])
        stages = compile_plan(
            job, plan, efind_env.cluster, boundary_override="post"
        )
        post_names = [fn.name for fn in stages[0].conf.reduce_post_chain]
        assert any(n.startswith("post[") for n in post_names)
        # second stage must not re-run postProcess
        assert not any(
            fn.name.startswith("post[") for fn in stages[1].conf.map_chain
        )

    def test_idxloc_stage_uses_scheme_partitioner(self, efind_env):
        job = efind_env.make_job("c6")
        plan = forced_plan(specs_of(job), Strategy.IDXLOC, ["head0"])
        stages = compile_plan(job, plan, efind_env.cluster)
        shuffle = stages[0].conf
        assert isinstance(shuffle.partitioner, SchemePartitioner)
        assert shuffle.output_per_partition
        assert shuffle.num_reduce_tasks == (
            efind_env.kv.partition_scheme.num_partitions
        )
        assert stages[1].read_constraint is efind_env.kv.partition_scheme

    def test_tail_repart_three_stages(self, efind_env):
        job = efind_env.make_job("c7", placement="tail")
        plan = forced_plan(specs_of(job), Strategy.REPART, ["tail0"])
        stages = compile_plan(job, plan, efind_env.cluster)
        # main (map+reduce+pre) | shuffle | remainder
        assert len(stages) >= 2
        assert stages[0].conf.reducer is job.reducer

    def test_body_repart_splits_around_reduce(self, efind_env):
        job = efind_env.make_job("c8", placement="body")
        plan = forced_plan(specs_of(job), Strategy.REPART, ["body0"])
        stages = compile_plan(job, plan, efind_env.cluster)
        assert len(stages) == 2
        # the user reducer runs in the *final* stage
        assert stages[-1].conf.reducer is job.reducer

    def test_start_at_reduce_skips_map_side(self, efind_env):
        job = efind_env.make_job("c9", placement="tail")
        plan = forced_plan(specs_of(job), Strategy.BASELINE)
        stages = compile_plan(job, plan, efind_env.cluster, start_at="reduce")
        assert len(stages) == 1
        assert stages[0].conf.map_chain == []
        assert stages[0].conf.reducer is job.reducer

    def test_unknown_start_at(self, efind_env):
        job = efind_env.make_job("c10")
        plan = forced_plan(specs_of(job), Strategy.BASELINE)
        with pytest.raises(PlanningError):
            compile_plan(job, plan, efind_env.cluster, start_at="shuffle")
