"""Tests for EFindJobResult.summary()."""

from repro.core.costmodel import Strategy


class TestSummary:
    def test_plain_run(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("sum1"), mode="forced", forced_strategy=Strategy.CACHE
        )
        text = res.summary()
        assert "'sum1'" in text
        assert "1 MapReduce job(s)" in text
        assert "cache" in text
        assert f"{len(res.output)} records" in text

    def test_multi_stage_run(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("sum2"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        text = res.summary()
        assert "2 MapReduce job(s)" in text
        assert "stage 0" in text and "stage 1" in text

    def test_replanned_run_mentions_both_plans(self, efind_env):
        res = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("sum3"), mode="dynamic"
        )
        text = res.summary()
        if res.replanned:
            assert "re-optimized mid-map" in text
            assert "->" in text
            assert "aborted mid-map" in text
