"""Tests for the idempotence escape hatch (paper footnote 2)."""

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import CostEnv, Placement, Strategy
from repro.core.optimizer import (
    best_strategy_for_index,
    eligible_strategies,
    full_enumerate,
)
from repro.core.statistics import IndexStats, OperatorStats


class VolatileAccessor(IndexAccessor):
    idempotent = False


@pytest.fixture
def env():
    return CostEnv(bw=125e6, f=3e-8, t_cache=2e-6, lookup_bw=125e6)


@pytest.fixture
def hot_stats():
    op = OperatorStats(n1=10_000, spre=100, sidx=150, spost=80, smap=80)
    op.per_index[0] = IndexStats(
        nik=1.0, sik=8, siv=64, tj=5e-3, miss_ratio=0.05, theta=50.0
    )
    return op


class TestOptimizerRespectsIdempotence:
    def test_non_idempotent_only_baseline(self, hot_stats):
        strategies = eligible_strategies(
            hot_stats, 0, supports_locality=True, allow_extra_job=True,
            idempotent=False,
        )
        assert strategies == [Strategy.BASELINE]

    def test_best_strategy_pinned(self, env, hot_stats):
        # With idempotence, this index would obviously be cached or
        # re-partitioned (theta=50, R=0.05)...
        free, _ = best_strategy_for_index(
            env, hot_stats, 0, Placement.BEFORE_MAP, True, True
        )
        assert free is not Strategy.BASELINE
        # ...but a non-idempotent index must stay baseline.
        pinned, _ = best_strategy_for_index(
            env, hot_stats, 0, Placement.BEFORE_MAP, True, True, idempotent=False
        )
        assert pinned is Strategy.BASELINE

    def test_full_enumerate_mixed(self, env, hot_stats):
        hot_stats.per_index[1] = IndexStats(
            nik=1.0, sik=8, siv=64, tj=5e-3, miss_ratio=0.05, theta=50.0
        )
        plan = full_enumerate(
            env, hot_stats, Placement.BEFORE_MAP, [True, True], "op",
            idempotent=[True, False],
        )
        assert plan.strategies[1] is Strategy.BASELINE
        assert plan.strategies[0] is not Strategy.BASELINE


class TestEndToEnd:
    def test_static_plan_keeps_baseline_for_volatile_index(self, efind_env):
        job = efind_env.make_job("vol1")
        job.head_operators[0].accessors[0] = VolatileAccessor(efind_env.kv)
        runner = efind_env.runner()
        runner.run(
            efind_env.make_job("vol1-prof"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        # Same signature trick will not apply (different accessor class),
        # so profile the volatile job itself.
        job_prof = efind_env.make_job("vol1-prof2")
        job_prof.head_operators[0].accessors[0] = VolatileAccessor(efind_env.kv)
        runner.run(job_prof, mode="forced", forced_strategy=Strategy.BASELINE)
        res = runner.run(job, mode="static")
        assert res.plan.operators["head0"].strategies[0] is Strategy.BASELINE

    def test_accessor_signature_distinguishes_volatile(self, efind_env):
        normal = IndexAccessor(efind_env.kv)
        volatile = VolatileAccessor(efind_env.kv)
        assert normal.signature() != volatile.signature()
