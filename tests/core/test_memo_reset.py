"""Regression tests: per-task state in ``LookupFn`` must reset when a
task (re)starts.

The adjacent-duplicate memo and the batching buffers live on the
chained-function instance, which the simulated runtime shares across
task attempts. ``start()`` therefore has to drop them; if it ever stops
doing so, a retried task would begin life with the crashed attempt's
memo (eliding fetches it never performed on this attempt) or replay its
un-flushed pending records into the output.
"""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.core.strategy import LookupFn, make_carrier
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.base import MappingIndex
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer, OutputCollector, TaskContext
from repro.simcluster.cluster import Cluster
from repro.simcluster.faults import FaultPlan, TaskCrash
from repro.simcluster.timemodel import TimeModel


@pytest.fixture
def ctx():
    cluster = Cluster(num_nodes=2)
    return TaskContext(cluster.nodes[0], TimeModel(), task_id="t0")


@pytest.fixture
def index():
    return MappingIndex("m", {f"k{i}": [i] for i in range(100)}, service_time=1e-3)


@pytest.fixture
def op(index):
    return IndexOperator("unit-op").add_index(IndexAccessor(index))


def carrier_for(key):
    return key, make_carrier("v", ((key,),), (None,))


class TestStartResetsPerTaskState:
    def test_memo_dropped_between_attempts(self, op, index, ctx):
        fn = LookupFn(op, "op0", 0, dedup_adjacent=True)
        fn.start(ctx)
        col = OutputCollector()
        fn.process(*carrier_for("k3"), col, ctx)
        fn.process(*carrier_for("k3"), col, ctx)
        assert index.lookups_served == 1  # second record memo-hit

        # The runtime retries the task: same instance, fresh start().
        fn.start(ctx)
        assert fn._memo_values == ()
        fn.process(*carrier_for("k3"), col, ctx)
        # The retry must refetch: its memo cannot carry over from the
        # crashed attempt.
        assert index.lookups_served == 2

    def test_memo_key_reset_to_sentinel(self, op, ctx):
        # The sentinel must not compare equal to any real ik -- in
        # particular not to None, which is a legal lookup key.
        fn = LookupFn(op, "op0", 0, dedup_adjacent=True)
        fn.start(ctx)
        assert fn._memo_key is not None
        assert fn._memo_key != None  # noqa: E711 -- the comparison IS the test

    def test_pending_batch_dropped_between_attempts(self, op, ctx):
        fn = LookupFn(op, "op0", 0, batch_size=4)
        fn.start(ctx)
        col = OutputCollector()
        fn.process(*carrier_for("k1"), col, ctx)
        fn.process(*carrier_for("k2"), col, ctx)
        assert col.records == []  # buffered, not yet flushed

        fn.start(ctx)  # retry: the crashed attempt's buffer must vanish
        fn.process(*carrier_for("k1"), col, ctx)
        fn.process(*carrier_for("k2"), col, ctx)
        fn.finish(col, ctx)
        # Exactly the retry's two records -- nothing replayed from the
        # first attempt's pending buffer.
        assert len(col.records) == 2
        assert sorted(k for k, _ in col.records) == ["k1", "k2"]


class FirstCityOperator(IndexOperator):
    """(user, payload) record -> (city, payload)."""

    def pre_process(self, key, value, index_input):
        user, payload = value
        index_input.put(0, user)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        collector.collect(cities[0] if cities else "missing", value)


class TestRetriedTaskRuntime:
    """End-to-end: crash the map task that runs the dedup LookupFn
    (forced REPART, ``boundary_override='pre'``) mid-stream and check
    the retried job is indistinguishable from a clean one."""

    def env(self):
        rng = random.Random(99)
        cluster = Cluster(num_nodes=6, map_slots_per_node=2, reduce_slots_per_node=2)
        dfs = DistributedFileSystem(cluster, block_size=8 * 1024)
        records = [
            (i, (f"user{rng.randrange(60):03d}", "x" * 40)) for i in range(1200)
        ]
        dfs.write("/in/memo", records)
        kv = DistributedKVStore("memo-users", cluster, service_time=4e-3)
        for u in range(60):
            kv.put_unique(f"user{u:03d}", f"city{u % 9:02d}")
        return cluster, dfs, kv

    def make_job(self, name, kv):
        job = IndexJobConf(name)
        job.set_input_paths("/in/memo").set_output_path(f"/out/{name}")
        job.add_head_index_operator(
            FirstCityOperator("city-op").add_index(IndexAccessor(kv))
        )
        job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
        job.set_reducer(
            FnReducer(lambda k, vs: [(k, len(vs))], "count"), num_reduce_tasks=4
        )
        return job

    def run(self, name, fault_plan=None, batch_size=1):
        cluster, dfs, kv = self.env()
        runner = EFindRunner(
            cluster, dfs, fault_plan=fault_plan, batch_size=batch_size
        )
        # boundary 'pre' puts LookupFn(dedup_adjacent=True) into the map
        # phase of the '<name>/main' stage, fed by the sorted shuffle
        # output (adjacent duplicates => the memo actually fires).
        return runner.run(
            self.make_job(name, kv),
            mode="forced",
            forced_strategy="repart",
            extra_job_targets=["head0"],
            boundary_override="pre",
        )

    @pytest.mark.parametrize("batch_size", [1, 4])
    def test_retried_lookup_task_output_identical(self, batch_size):
        clean = self.run(f"memo-clean-b{batch_size}", batch_size=batch_size)
        # Crash the dedup-lookup map task mid-stream, inside its record
        # loop, so the dead attempt leaves a populated memo (and, for
        # batch_size > 1, a part-filled pending buffer) behind.
        plan = FaultPlan(
            task_crashes=[
                TaskCrash(f"memo-crash-b{batch_size}/main-m0000", 25)
            ]
        )
        crashed = self.run(
            f"memo-crash-b{batch_size}", fault_plan=plan, batch_size=batch_size
        )
        assert crashed.counters.get("fault", "tasks_retried") == 1
        assert sorted(crashed.output) == sorted(clean.output)
        # The retry re-paid for its work: never faster than the clean run.
        assert crashed.sim_time >= clean.sim_time
