"""Integration tests for EFindRunner modes and plumbing."""

import pytest

from repro.common.errors import PlanningError
from repro.core.costmodel import Strategy
from repro.core.optimizer import forced_plan


class TestModes:
    def test_unknown_mode_rejected(self, efind_env):
        with pytest.raises(PlanningError):
            efind_env.runner().run(efind_env.make_job("m1"), mode="magic")

    def test_forced_requires_strategy(self, efind_env):
        with pytest.raises(PlanningError):
            efind_env.runner().run(efind_env.make_job("m2"), mode="forced")

    def test_forced_accepts_string_strategy(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("m3"), mode="forced", forced_strategy="cache"
        )
        assert res.plan.operators["head0"].strategies[0] is Strategy.CACHE

    def test_plan_mode_executes_given_plan(self, efind_env):
        job = efind_env.make_job("m4")
        plan = forced_plan(job.operator_specs(), Strategy.CACHE)
        res = efind_env.runner().run(job, mode="plan", plan=plan)
        assert res.plan is plan

    def test_plan_mode_requires_plan(self, efind_env):
        with pytest.raises(PlanningError):
            efind_env.runner().run(efind_env.make_job("m5"), mode="plan")

    def test_static_without_stats_falls_back_to_baseline(self, efind_env):
        res = efind_env.runner().run(efind_env.make_job("m6"), mode="static")
        assert res.plan.operators["head0"].strategies[0] is Strategy.BASELINE

    def test_static_with_stats_optimizes(self, efind_env):
        runner = efind_env.runner()
        runner.run(
            efind_env.make_job("m7-profile"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        res = runner.run(efind_env.make_job("m7"), mode="static")
        assert res.plan.operators["head0"].strategies[0] is not Strategy.BASELINE


class TestCatalog:
    def test_update_catalog_records_stats(self, efind_env):
        runner = efind_env.runner()
        res = runner.run(
            efind_env.make_job("cat1"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        assert len(runner.catalog) == 1
        assert res.stats["head0"].n1 > 0

    def test_update_catalog_can_be_disabled(self, efind_env):
        runner = efind_env.runner()
        runner.run(
            efind_env.make_job("cat2"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
            update_catalog=False,
        )
        assert len(runner.catalog) == 0

    def test_catalog_shared_across_jobs_by_signature(self, efind_env):
        runner = efind_env.runner()
        runner.run(
            efind_env.make_job("cat3a"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        # A different job using the same operator type + index benefits.
        res = runner.run(efind_env.make_job("cat3b"), mode="static")
        assert res.plan.operators["head0"].strategies[0] is not Strategy.BASELINE


class TestResults:
    def test_output_written_to_dfs(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("r1"), mode="forced", forced_strategy=Strategy.CACHE
        )
        assert sorted(efind_env.dfs.read("/out/r1"), key=repr) == sorted(
            res.output, key=repr
        )

    def test_stage_times_chain(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("r2"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        stages = res.stage_results
        assert len(stages) == 2
        assert stages[1].start_time == pytest.approx(stages[0].end_time)
        assert res.end_time == stages[-1].end_time

    def test_counters_merged_across_stages(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("r3"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        assert res.counters.get("task", "map_input_records") > 0

    def test_start_time_offset(self, efind_env):
        a = efind_env.runner().run(
            efind_env.make_job("r4"), mode="forced", forced_strategy=Strategy.CACHE
        )
        b = efind_env.runner().run(
            efind_env.make_job("r5"),
            mode="forced",
            forced_strategy=Strategy.CACHE,
            start_time=50.0,
        )
        assert b.sim_time == pytest.approx(a.sim_time, rel=0.05)
        assert b.end_time > 50.0

    def test_intermediate_outputs_use_private_paths(self, efind_env):
        res = efind_env.runner().run(
            efind_env.make_job("r6"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        first = res.stage_results[0]
        assert first.output_path.startswith("/_efind/")
        assert res.stage_results[-1].output_path == "/out/r6"


class TestDynamicResume:
    def test_map_resume_preserves_output(self, efind_env):
        base = efind_env.runner().run(
            efind_env.make_job("d1-base"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("d1"), mode="dynamic"
        )
        assert dyn.replanned
        assert sorted(dyn.output) == sorted(base.output)

    def test_resume_reuses_completed_map_work(self, efind_env):
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("d2"), mode="dynamic"
        )
        assert dyn.replanned
        aborted = dyn.stage_results[0]
        assert aborted.aborted_phase == "map"
        processed_after = sum(
            r.input_records
            for s in dyn.stage_results[1:2]
            for r in s.map_runs
        )
        # The resumed stages only read the remaining records.
        already_done = sum(r.input_records for r in aborted.map_runs)
        assert already_done + processed_after == efind_env.num_records

    def test_final_output_written_once(self, efind_env):
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("d3"), mode="dynamic"
        )
        assert sorted(efind_env.dfs.read("/out/d3"), key=repr) == sorted(
            dyn.output, key=repr
        )
