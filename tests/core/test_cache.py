"""Unit tests for the LRU lookup cache and the shadow cache."""

import pytest

from repro.core.cache import LRUCache, ShadowCache


class TestLRUCache:
    def test_miss_then_hit(self):
        c = LRUCache(4)
        hit, _ = c.get("a")
        assert not hit
        c.put("a", 1)
        hit, value = c.get("a")
        assert hit and value == 1

    def test_capacity_evicts_lru(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)  # evicts a
        assert "a" not in c
        assert "b" in c and "c" in c

    def test_get_refreshes_recency(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")
        c.put("c", 3)  # evicts b, not a
        assert "a" in c and "b" not in c

    def test_put_existing_updates_value(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("a", 2)
        assert c.get("a") == (True, 2)
        assert len(c) == 1

    def test_probe_accounting(self):
        c = LRUCache(4)
        c.get("a")
        c.put("a", 1)
        c.get("a")
        assert c.probes == 2
        assert c.hits == 1
        assert c.misses == 1
        assert c.miss_ratio == 0.5

    def test_miss_ratio_before_probes_is_one(self):
        assert LRUCache(4).miss_ratio == 1.0

    def test_clear(self):
        c = LRUCache(4)
        c.put("a", 1)
        c.get("a")
        c.clear()
        assert len(c) == 0 and c.probes == 0

    def test_clear_resets_all_accounting(self):
        c = LRUCache(4)
        c.get("a")  # miss
        c.put("a", 1)
        c.get("a")  # hit
        c.clear()
        assert (c.probes, c.hits, c.misses) == (0, 0, 0)
        assert c.miss_ratio == 1.0  # back to the pessimistic prior
        # Post-clear probes start a fresh estimate, not a continuation.
        c.get("a")
        assert (c.probes, c.hits, c.miss_ratio) == (1, 0, 1.0)
        c.put("a", 2)
        c.get("a")
        assert (c.probes, c.hits, c.miss_ratio) == (2, 1, 0.5)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_paper_default_capacity_workload(self):
        """1024-entry cache over a 500-key working set: all hits after
        the first pass (the Section 3.2 scenario)."""
        c = LRUCache(1024)
        for k in range(500):
            c.put(k, k)
        for k in range(500):
            hit, _ = c.get(k)
            assert hit


class TestShadowCache:
    def test_default_warmup_is_fraction_of_capacity(self):
        s = ShadowCache(1024)
        for i in range(129):
            s.probe(i)
        assert s.warmed  # capacity // 8 = 128 probes suffice

    def test_estimates_without_storing_values(self):
        s = ShadowCache(8)
        assert not s.probe("a")
        assert s.probe("a")

    def test_warmup_excluded_from_estimate(self):
        s = ShadowCache(10, warmup=10)
        # First 10 probes are warm-up: all distinct, all misses.
        for i in range(10):
            s.probe(i)
        assert s.miss_ratio == 1.0  # nothing counted yet
        # After warm-up, repeats of the same keys are hits.
        for i in range(10):
            s.probe(i)
        assert s.miss_ratio == 0.0

    def test_warmed_flag(self):
        s = ShadowCache(4, warmup=4)
        for i in range(4):
            s.probe(i)
        assert not s.warmed
        s.probe(99)
        assert s.warmed

    def test_post_warmup_miss_ratio_tracks_stream(self):
        s = ShadowCache(4, warmup=4)
        for i in range(100):
            s.probe(i)  # all-distinct stream -> everything misses
        assert s.miss_ratio == 1.0

    def test_warmup_boundary_first_counted_probe(self):
        # The boundary is exclusive: probe warmup+1 is the FIRST one
        # that enters the estimate, and miss_ratio stays exactly 1.0
        # (the pessimistic prior) until then.
        s = ShadowCache(16, warmup=5)
        for i in range(5):
            s.probe("k")
            assert not s.warmed
            assert s.counted_probes == 0
            assert s.miss_ratio == 1.0
        s.probe("k")  # probe number warmup + 1
        assert s.warmed
        assert s.counted_probes == 1
        assert s.counted_hits == 1  # "k" was cached during warm-up
        assert s.miss_ratio == 0.0

    def test_zero_warmup_counts_from_first_probe(self):
        s = ShadowCache(16, warmup=0)
        assert not s.probe("k")
        assert s.warmed
        assert s.counted_probes == 1
        assert s.miss_ratio == 1.0

    def test_rejects_negative_warmup(self):
        with pytest.raises(ValueError):
            ShadowCache(16, warmup=-1)

    def test_miss_ratio_is_prior_at_zero_counted_probes(self):
        # Warmed flag alone must not flip the estimate off the
        # pessimistic prior -- only counted probes may.
        s = ShadowCache(16, warmup=0)
        assert s.miss_ratio == 1.0

    def test_clear_resets_estimate_and_warmup(self):
        s = ShadowCache(16, warmup=2)
        for _ in range(5):
            s.probe("k")
        assert s.warmed and s.counted_probes == 3
        assert s.miss_ratio == 0.0
        s.clear()
        # Back to the cold state: pessimistic prior, not warmed, no
        # counted probes, and the keys themselves are gone.
        assert not s.warmed
        assert (s.counted_probes, s.counted_hits) == (0, 0)
        assert s.miss_ratio == 1.0
        assert s.probes == 0
        assert not s.probe("k")  # the old window's keys were dropped

    def test_clear_mid_window_requires_rewarm(self):
        # A clear in the middle of the warm-up window must restart the
        # window from zero, not resume it partway through: otherwise
        # the fresh cache's compulsory misses leak into the estimate.
        s = ShadowCache(16, warmup=4)
        s.probe("a")
        s.probe("b")
        s.clear()
        for i in range(4):
            s.probe(i)
            assert not s.warmed
            assert s.counted_probes == 0
        s.probe(0)
        assert s.warmed
        assert s.counted_probes == 1

    def test_boundary_warmup_zero_includes_compulsory_miss(self):
        # warmup=0: counting starts at the very first probe, so the
        # compulsory miss of a never-seen key enters the estimate.
        s = ShadowCache(64, warmup=0)
        s.probe("k")  # compulsory miss, counted
        s.probe("k")  # hit, counted
        assert (s.counted_probes, s.counted_hits) == (2, 1)
        assert s.miss_ratio == 0.5

    def test_boundary_warmup_one_two_probe_stream_estimates_zero(self):
        # warmup=1 excludes exactly the first probe: a two-probe stream
        # over one key counts only the second probe (a hit), so the
        # docstring's promised R = 0 boundary case holds.
        s = ShadowCache(64, warmup=1)
        s.probe("k")
        assert not s.warmed
        assert s.counted_probes == 0
        s.probe("k")
        assert s.warmed
        assert (s.counted_probes, s.counted_hits) == (1, 1)
        assert s.miss_ratio == 0.0

    def test_boundary_warmup_capacity_fraction(self):
        # The default window for small caches is capacity // 8; probes
        # 1..warmup are excluded and probe warmup + 1 is the first one
        # counted, exactly as documented.
        capacity = 32
        warmup = capacity // 8
        s = ShadowCache(capacity, warmup=warmup)
        for i in range(warmup):
            s.probe(i)
            assert not s.warmed
        assert s.counted_probes == 0
        assert s.miss_ratio == 1.0  # still the pessimistic prior
        s.probe(0)  # probe warmup + 1: first counted, a hit
        assert s.warmed
        assert (s.counted_probes, s.counted_hits) == (1, 1)
        # And the constructor default matches min(capacity // 8, 64).
        assert ShadowCache(capacity)._warmup == warmup
        assert ShadowCache(4096)._warmup == 64

    def test_probe_streams_identical_after_clear(self):
        # clear() must be indistinguishable from a newly built shadow.
        fresh = ShadowCache(8, warmup=3)
        cleared = ShadowCache(8, warmup=3)
        for i in range(20):
            cleared.probe(i % 5)
        cleared.clear()
        stream = [("x", i % 3) for i in range(12)]
        for key in stream:
            assert fresh.probe(key) == cleared.probe(key)
        assert fresh.miss_ratio == cleared.miss_ratio
        assert fresh.counted_probes == cleared.counted_probes
