"""Unit + integration tests for adaptive re-optimization (Algorithm 1)."""

import math

import pytest

from repro.core.adaptive import evaluate_replan, relevant_operator_ids
from repro.core.costmodel import CostEnv, Strategy
from repro.core.optimizer import baseline_plan
from repro.core.statistics import OperatorStatsAccumulator, TaskSample
from repro.obs.audit import (
    VERDICT_REPLAN,
    VERDICT_VARIANCE_GATE,
    AdaptiveAuditLog,
)


def make_registry(job, num_machines=12, samples=4, n1=500, tj=5e-3, miss=1.0):
    registry = {}
    for op_id, (_pl, m) in job.operator_specs().items():
        acc = OperatorStatsAccumulator(op_id, m, num_machines)
        for t in range(samples):
            s = TaskSample(task_id=f"t{t}")
            s.n1 = n1
            s.s1_bytes = n1 * 40.0
            s.spre_bytes = n1 * 50.0
            s.sidx_bytes = n1 * 70.0
            s.spost_bytes = n1 * 30.0
            s.nik = {0: n1}
            s.sik_bytes = {0: n1 * 8.0}
            s.lookups = {0: n1}
            s.siv_bytes = {0: n1 * 10.0}
            s.tj_total = {0: n1 * tj}
            s.tj_samples = {0: n1}
            s.cache_probes = {0: n1}
            s.cache_misses = {0: int(n1 * miss)}
            acc.add_sample(s)
        # many duplicate keys across tasks
        for k in range(50):
            acc.add_key_to_sketch(0, k)
        registry[op_id] = acc
    return registry


@pytest.fixture
def env():
    return CostEnv(bw=125e6, f=3e-8, t_cache=2e-6, extra_job_overhead=3.0)


class TestRelevantOperators:
    def test_map_phase_selects_head_and_body(self, efind_env):
        job = efind_env.make_job("r1", placement="body")
        assert relevant_operator_ids(job, "map") == ["body0"]
        assert relevant_operator_ids(job, "reduce") == []

    def test_reduce_phase_selects_tail(self, efind_env):
        job = efind_env.make_job("r2", placement="tail")
        assert relevant_operator_ids(job, "map") == []
        assert relevant_operator_ids(job, "reduce") == ["tail0"]


class TestEvaluateReplan:
    def test_replans_when_improvement_large(self, efind_env, env):
        job = efind_env.make_job("e1")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        decision = evaluate_replan(job, plan, registry, env, "map")
        assert decision is not None
        assert decision.improvement > 0
        assert decision.new_plan.operators["head0"].strategies[0] is not (
            Strategy.BASELINE
        )

    def test_no_replan_when_nothing_relevant(self, efind_env, env):
        job = efind_env.make_job("e2", placement="tail")
        registry = make_registry(job)
        plan = baseline_plan(job.operator_specs())
        assert evaluate_replan(job, plan, registry, env, "map") is None

    def test_variance_gate_blocks(self, efind_env, env):
        job = efind_env.make_job("e3")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        # make one sample wildly different
        skew = TaskSample(task_id="skew")
        skew.n1 = 50_000
        skew.spre_bytes = 50_000 * 50.0
        registry["head0"].add_sample(skew)
        assert (
            evaluate_replan(
                job, baseline_plan(job.operator_specs()), registry, env, "map",
                variance_threshold=0.05,
            )
            is None
        )

    def test_too_few_samples_blocks(self, efind_env, env):
        job = efind_env.make_job("e4")
        registry = make_registry(job, samples=1)
        assert (
            evaluate_replan(
                job, baseline_plan(job.operator_specs()), registry, env, "map"
            )
            is None
        )

    def test_plan_change_cost_gate(self, efind_env, env):
        job = efind_env.make_job("e5")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        cheap = evaluate_replan(job, plan, registry, env, "map", plan_change_cost=0.0)
        assert cheap is not None
        blocked = evaluate_replan(
            job, plan, registry, env, "map",
            plan_change_cost=cheap.improvement + 1.0,
        )
        assert blocked is None

    def test_no_replan_when_plan_already_optimal(self, efind_env, env):
        job = efind_env.make_job("e6")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        first = evaluate_replan(job, plan, registry, env, "map")
        assert first is not None
        again = evaluate_replan(job, first.new_plan, registry, env, "map")
        assert again is None

    def test_scale_zero_means_no_remaining_work(self, efind_env, env):
        job = efind_env.make_job("e7")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        assert (
            evaluate_replan(job, plan, registry, env, "map", scale=0.0) is None
        )

    def test_scale_magnifies_improvement(self, efind_env, env):
        job = efind_env.make_job("e8")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        small = evaluate_replan(job, plan, registry, env, "map", scale=1.0)
        big = evaluate_replan(job, plan, registry, env, "map", scale=10.0)
        assert big.improvement > small.improvement


def perturbed_registry(job):
    """A registry whose head0 statistics have a small but nonzero
    relative deviation (one sample 20% heavier than the rest)."""
    registry = make_registry(job, tj=5e-3, miss=0.05)
    acc = registry["head0"]
    acc.samples[0].n1 = int(acc.samples[0].n1 * 1.2)
    return registry


class TestVarianceGateEdges:
    def test_exactly_at_threshold_is_stable(self, efind_env, env):
        """The gate is ``rdev <= threshold``: a deviation exactly equal
        to the threshold still counts as stable."""
        job = efind_env.make_job("vg1")
        registry = perturbed_registry(job)
        rdev = registry["head0"].relative_deviation()
        assert 0.0 < rdev < math.inf
        plan = baseline_plan(job.operator_specs())
        at = evaluate_replan(
            job, plan, registry, env, "map", variance_threshold=rdev
        )
        assert at is not None

    def test_just_below_threshold_blocks(self, efind_env, env):
        job = efind_env.make_job("vg2")
        registry = perturbed_registry(job)
        rdev = registry["head0"].relative_deviation()
        plan = baseline_plan(job.operator_specs())
        audit = AdaptiveAuditLog()
        below = evaluate_replan(
            job,
            plan,
            registry,
            env,
            "map",
            variance_threshold=math.nextafter(rdev, 0.0),
            audit=audit,
        )
        assert below is None
        record = audit.records[-1]
        assert record.verdict == VERDICT_VARIANCE_GATE
        entry = next(g for g in record.gate if g["operator"] == "head0")
        assert entry["relative_deviation"] == pytest.approx(rdev)
        assert not entry["stable"]

    def test_single_sample_is_unstable(self, efind_env, env):
        """One task sample has no variance estimate at all: the gate
        must treat it as unstable, not as perfectly stable."""
        job = efind_env.make_job("vg3")
        registry = make_registry(job, samples=1)
        assert registry["head0"].relative_deviation() == math.inf
        audit = AdaptiveAuditLog()
        decision = evaluate_replan(
            job,
            baseline_plan(job.operator_specs()),
            registry,
            env,
            "map",
            audit=audit,
        )
        assert decision is None
        entry = next(g for g in audit.records[-1].gate if g["operator"] == "head0")
        assert entry["num_samples"] == 1
        assert entry["relative_deviation"] is None
        assert not entry["stable"]

    def test_zero_mean_statistic_is_skipped_not_divided(self, efind_env, env):
        """All-zero byte statistics (mean 0) must not divide by zero;
        with identical n1 samples the deviation is exactly 0.0 and the
        gate passes."""
        job = efind_env.make_job("vg4")
        registry = {}
        for op_id, (_pl, m) in job.operator_specs().items():
            acc = OperatorStatsAccumulator(op_id, m, 12)
            for t in range(3):
                s = TaskSample(task_id=f"z{t}")
                s.n1 = 100  # identical across samples; all bytes zero
                acc.add_sample(s)
            registry[op_id] = acc
        assert registry["head0"].relative_deviation() == 0.0
        audit = AdaptiveAuditLog()
        evaluate_replan(
            job,
            baseline_plan(job.operator_specs()),
            registry,
            env,
            "map",
            audit=audit,
        )
        record = audit.records[-1]
        assert record.verdict != VERDICT_VARIANCE_GATE
        assert all(g["stable"] for g in record.gate)


class TestAuditRecords:
    def test_replan_record_is_complete(self, efind_env, env):
        job = efind_env.make_job("ar1")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        audit = AdaptiveAuditLog()
        decision = evaluate_replan(
            job,
            baseline_plan(job.operator_specs()),
            registry,
            env,
            "map",
            audit=audit,
            now=1.5,
        )
        assert decision is not None
        record = decision.audit_record
        assert record is audit.records[-1]
        assert record.verdict == VERDICT_REPLAN
        assert record.sim_time == 1.5
        assert record.new_cost < record.current_cost
        detail = next(o for o in record.operators if o["operator"] == "head0")
        # every strategy priced for every index, plus eligibility
        for table in detail["strategies"].values():
            assert set(table["costs"]) == {
                "base",
                "cache",
                "repart",
                "idxloc",
                "partial",
            }
            assert set(table["eligible"]) <= set(table["costs"])
        for sample in detail["samples"].values():
            for field in ("theta", "miss_ratio", "tj", "nik"):
                assert field in sample
        assert detail["current"] != detail["chosen"]

    def test_no_audit_log_records_nothing(self, efind_env, env):
        job = efind_env.make_job("ar2")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        decision = evaluate_replan(
            job, baseline_plan(job.operator_specs()), registry, env, "map"
        )
        assert decision is not None
        assert decision.audit_record is None

    def test_every_evaluation_is_recorded(self, efind_env, env):
        """Negative verdicts are logged too -- the log explains refusals
        to re-plan, not just plan changes."""
        job = efind_env.make_job("ar3")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        audit = AdaptiveAuditLog()
        evaluate_replan(
            job,
            plan,
            registry,
            env,
            "map",
            plan_change_cost=1e9,
            audit=audit,
        )
        assert len(audit) == 1
        assert audit.records[0].verdict == "improvement_below_threshold"
        assert not audit.replans


class TestAdaptiveEndToEnd:
    def test_dynamic_beats_baseline_with_expensive_lookups(self, efind_env):
        base = efind_env.runner().run(
            efind_env.make_job("a-base"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        dyn = efind_env.runner().run(efind_env.make_job("a-dyn"), mode="dynamic")
        assert sorted(dyn.output) == sorted(base.output)
        assert dyn.sim_time <= base.sim_time

    def test_dynamic_replans_and_reports_phase(self, efind_env):
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("a-dyn2"), mode="dynamic"
        )
        assert dyn.replanned
        assert dyn.replan_phase == "map"
        assert not dyn.plan.same_strategies(dyn.initial_plan)

    def test_dynamic_slower_than_static_optimal(self, efind_env):
        """The paper: dynamic pays the statistics-collection phase."""
        profiler = efind_env.runner()
        profiler.run(
            efind_env.make_job("a-prof"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        opt = profiler.run(efind_env.make_job("a-opt"), mode="static")
        dyn = efind_env.runner().run(efind_env.make_job("a-dyn3"), mode="dynamic")
        assert dyn.sim_time >= opt.sim_time

    def test_reduce_phase_replan_for_tail_op(self, efind_env):
        dyn = efind_env.runner(variance_threshold=0.6).run(
            efind_env.make_job("a-tail", placement="tail", reduce_tasks=48),
            mode="dynamic",
        )
        base = efind_env.runner().run(
            efind_env.make_job("a-tail-base", placement="tail", reduce_tasks=48),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        assert sorted(dyn.output) == sorted(base.output)

    def test_at_most_one_plan_change(self, efind_env):
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("a-once"), mode="dynamic"
        )
        if dyn.replanned:
            # after the change, every subsequent stage ran to completion
            for stage in dyn.stage_results[1:]:
                assert not stage.aborted
