"""Unit + integration tests for adaptive re-optimization (Algorithm 1)."""

import pytest

from repro.core.adaptive import evaluate_replan, relevant_operator_ids
from repro.core.costmodel import CostEnv, Strategy
from repro.core.optimizer import baseline_plan
from repro.core.statistics import OperatorStatsAccumulator, TaskSample


def make_registry(job, num_machines=12, samples=4, n1=500, tj=5e-3, miss=1.0):
    registry = {}
    for op_id, (_pl, m) in job.operator_specs().items():
        acc = OperatorStatsAccumulator(op_id, m, num_machines)
        for t in range(samples):
            s = TaskSample(task_id=f"t{t}")
            s.n1 = n1
            s.s1_bytes = n1 * 40.0
            s.spre_bytes = n1 * 50.0
            s.sidx_bytes = n1 * 70.0
            s.spost_bytes = n1 * 30.0
            s.nik = {0: n1}
            s.sik_bytes = {0: n1 * 8.0}
            s.lookups = {0: n1}
            s.siv_bytes = {0: n1 * 10.0}
            s.tj_total = {0: n1 * tj}
            s.tj_samples = {0: n1}
            s.cache_probes = {0: n1}
            s.cache_misses = {0: int(n1 * miss)}
            acc.add_sample(s)
        # many duplicate keys across tasks
        for k in range(50):
            acc.add_key_to_sketch(0, k)
        registry[op_id] = acc
    return registry


@pytest.fixture
def env():
    return CostEnv(bw=125e6, f=3e-8, t_cache=2e-6, extra_job_overhead=3.0)


class TestRelevantOperators:
    def test_map_phase_selects_head_and_body(self, efind_env):
        job = efind_env.make_job("r1", placement="body")
        assert relevant_operator_ids(job, "map") == ["body0"]
        assert relevant_operator_ids(job, "reduce") == []

    def test_reduce_phase_selects_tail(self, efind_env):
        job = efind_env.make_job("r2", placement="tail")
        assert relevant_operator_ids(job, "map") == []
        assert relevant_operator_ids(job, "reduce") == ["tail0"]


class TestEvaluateReplan:
    def test_replans_when_improvement_large(self, efind_env, env):
        job = efind_env.make_job("e1")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        decision = evaluate_replan(job, plan, registry, env, "map")
        assert decision is not None
        assert decision.improvement > 0
        assert decision.new_plan.operators["head0"].strategies[0] is not (
            Strategy.BASELINE
        )

    def test_no_replan_when_nothing_relevant(self, efind_env, env):
        job = efind_env.make_job("e2", placement="tail")
        registry = make_registry(job)
        plan = baseline_plan(job.operator_specs())
        assert evaluate_replan(job, plan, registry, env, "map") is None

    def test_variance_gate_blocks(self, efind_env, env):
        job = efind_env.make_job("e3")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        # make one sample wildly different
        skew = TaskSample(task_id="skew")
        skew.n1 = 50_000
        skew.spre_bytes = 50_000 * 50.0
        registry["head0"].add_sample(skew)
        assert (
            evaluate_replan(
                job, baseline_plan(job.operator_specs()), registry, env, "map",
                variance_threshold=0.05,
            )
            is None
        )

    def test_too_few_samples_blocks(self, efind_env, env):
        job = efind_env.make_job("e4")
        registry = make_registry(job, samples=1)
        assert (
            evaluate_replan(
                job, baseline_plan(job.operator_specs()), registry, env, "map"
            )
            is None
        )

    def test_plan_change_cost_gate(self, efind_env, env):
        job = efind_env.make_job("e5")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        cheap = evaluate_replan(job, plan, registry, env, "map", plan_change_cost=0.0)
        assert cheap is not None
        blocked = evaluate_replan(
            job, plan, registry, env, "map",
            plan_change_cost=cheap.improvement + 1.0,
        )
        assert blocked is None

    def test_no_replan_when_plan_already_optimal(self, efind_env, env):
        job = efind_env.make_job("e6")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        first = evaluate_replan(job, plan, registry, env, "map")
        assert first is not None
        again = evaluate_replan(job, first.new_plan, registry, env, "map")
        assert again is None

    def test_scale_zero_means_no_remaining_work(self, efind_env, env):
        job = efind_env.make_job("e7")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        assert (
            evaluate_replan(job, plan, registry, env, "map", scale=0.0) is None
        )

    def test_scale_magnifies_improvement(self, efind_env, env):
        job = efind_env.make_job("e8")
        registry = make_registry(job, tj=5e-3, miss=0.05)
        plan = baseline_plan(job.operator_specs())
        small = evaluate_replan(job, plan, registry, env, "map", scale=1.0)
        big = evaluate_replan(job, plan, registry, env, "map", scale=10.0)
        assert big.improvement > small.improvement


class TestAdaptiveEndToEnd:
    def test_dynamic_beats_baseline_with_expensive_lookups(self, efind_env):
        base = efind_env.runner().run(
            efind_env.make_job("a-base"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        dyn = efind_env.runner().run(efind_env.make_job("a-dyn"), mode="dynamic")
        assert sorted(dyn.output) == sorted(base.output)
        assert dyn.sim_time <= base.sim_time

    def test_dynamic_replans_and_reports_phase(self, efind_env):
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("a-dyn2"), mode="dynamic"
        )
        assert dyn.replanned
        assert dyn.replan_phase == "map"
        assert not dyn.plan.same_strategies(dyn.initial_plan)

    def test_dynamic_slower_than_static_optimal(self, efind_env):
        """The paper: dynamic pays the statistics-collection phase."""
        profiler = efind_env.runner()
        profiler.run(
            efind_env.make_job("a-prof"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        opt = profiler.run(efind_env.make_job("a-opt"), mode="static")
        dyn = efind_env.runner().run(efind_env.make_job("a-dyn3"), mode="dynamic")
        assert dyn.sim_time >= opt.sim_time

    def test_reduce_phase_replan_for_tail_op(self, efind_env):
        dyn = efind_env.runner(variance_threshold=0.6).run(
            efind_env.make_job("a-tail", placement="tail", reduce_tasks=48),
            mode="dynamic",
        )
        base = efind_env.runner().run(
            efind_env.make_job("a-tail-base", placement="tail", reduce_tasks=48),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        assert sorted(dyn.output) == sorted(base.output)

    def test_at_most_one_plan_change(self, efind_env):
        dyn = efind_env.runner(plan_change_overhead=0.5).run(
            efind_env.make_job("a-once"), mode="dynamic"
        )
        if dyn.replanned:
            # after the change, every subsequent stage ran to completion
            for stage in dyn.stage_results[1:]:
                assert not stage.aborted
