"""Tests for statistics-catalog persistence."""

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.core.statistics import IndexStats, OperatorStats, StatisticsCatalog


def sample_catalog():
    catalog = StatisticsCatalog()
    stats = OperatorStats(
        n1=1234.5, s1=50, spre=60, sidx=120, spost=30, smap=40,
        num_tasks_sampled=24,
    )
    stats.per_index[0] = IndexStats(
        nik=0.8, sik=8, siv=64, tj=2e-3, miss_ratio=0.25,
        theta=12.5, distinct=987.0, lookups_observed=5000, probes_observed=5000,
    )
    stats.per_index[1] = IndexStats()
    catalog.put("OpA|IndexAccessor:kv", stats)
    return catalog


class TestRoundTrip:
    def test_dict_roundtrip(self):
        catalog = sample_catalog()
        clone = StatisticsCatalog.from_dict(catalog.to_dict())
        assert len(clone) == 1
        stats = clone.get("OpA|IndexAccessor:kv")
        assert stats.n1 == pytest.approx(1234.5)
        assert stats.num_tasks_sampled == 24
        idx = stats.index(0)
        assert idx.theta == pytest.approx(12.5)
        assert idx.miss_ratio == pytest.approx(0.25)
        assert idx.distinct == pytest.approx(987.0)
        assert stats.index(1).nik == 1.0  # defaults survive

    def test_file_roundtrip(self, tmp_path):
        catalog = sample_catalog()
        path = str(tmp_path / "catalog.json")
        catalog.save(path)
        loaded = StatisticsCatalog.load(path)
        assert loaded.to_dict() == catalog.to_dict()

    def test_empty_catalog(self, tmp_path):
        path = str(tmp_path / "empty.json")
        StatisticsCatalog().save(path)
        assert len(StatisticsCatalog.load(path)) == 0


class TestAcrossProcessesWorkflow:
    def test_saved_stats_drive_a_new_runner(self, efind_env, tmp_path):
        """Profile in one 'process', plan statically in another."""
        first = efind_env.runner()
        first.run(
            efind_env.make_job("cp-profile"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        path = str(tmp_path / "stats.json")
        first.catalog.save(path)

        second = EFindRunner(
            efind_env.cluster, efind_env.dfs, catalog=StatisticsCatalog.load(path)
        )
        res = second.run(efind_env.make_job("cp-opt"), mode="static")
        assert res.plan.operators["head0"].strategies[0] is not Strategy.BASELINE
