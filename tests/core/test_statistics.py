"""Unit tests for FM sketches, task samples, and the catalog."""

import math

import pytest

from repro.core.statistics import (
    FMSketch,
    IndexStats,
    OperatorStats,
    OperatorStatsAccumulator,
    StatisticsCatalog,
    TaskSample,
)


class TestFMSketch:
    def test_empty_estimate_small(self):
        assert FMSketch().estimate() < 100

    @pytest.mark.parametrize("n", [100, 1000, 10000])
    def test_estimate_within_factor_two(self, n):
        fm = FMSketch()
        for i in range(n):
            fm.add(f"key-{i}")
        est = fm.estimate()
        assert n / 2 <= est <= n * 2, f"n={n} est={est}"

    def test_duplicates_do_not_inflate(self):
        fm = FMSketch()
        for _ in range(50):
            for i in range(200):
                fm.add(i)
        assert fm.estimate() <= 400

    def test_zero_key_terminates(self):
        """Regression: integer key 0 used to hang the sketch."""
        fm = FMSketch()
        fm.add(0)
        assert fm.estimate() >= 0

    def test_merge_equals_union(self):
        a, b, union = FMSketch(), FMSketch(), FMSketch()
        for i in range(500):
            a.add(i)
            union.add(i)
        for i in range(400, 900):
            b.add(i)
            union.add(i)
        a.merge(b)
        assert a.bitmaps == union.bitmaps

    def test_merge_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FMSketch(64).merge(FMSketch(32))

    def test_copy_independent(self):
        a = FMSketch()
        a.add("x")
        b = a.copy()
        b.add("y")
        assert a.bitmaps != b.bitmaps


def make_sample(task, n1=100, keys=100, lookups=100, siv=6400.0, probes=0, misses=0):
    s = TaskSample(task_id=task)
    s.n1 = n1
    s.s1_bytes = n1 * 50.0
    s.spre_bytes = n1 * 60.0
    s.sidx_bytes = n1 * 120.0
    s.spost_bytes = n1 * 40.0
    s.nik = {0: keys}
    s.sik_bytes = {0: keys * 8.0}
    s.lookups = {0: lookups}
    s.siv_bytes = {0: siv}
    s.tj_total = {0: lookups * 1e-3}
    s.tj_samples = {0: lookups}
    if probes:
        s.cache_probes = {0: probes}
        s.cache_misses = {0: misses}
    return s


class TestAccumulator:
    def test_sample_for_get_or_create(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        a = acc.sample_for("t1")
        assert acc.sample_for("t1") is a

    def test_empty_samples_filtered(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        acc.sample_for("t1")  # untouched sample
        assert acc.num_samples == 0

    def test_aggregate_averages(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        acc.add_sample(make_sample("t1"))
        acc.add_sample(make_sample("t2"))
        stats = acc.aggregate()
        assert stats.n1 == pytest.approx(200 / 4)
        assert stats.s1 == pytest.approx(50.0)
        assert stats.spre == pytest.approx(60.0)
        assert stats.index(0).nik == pytest.approx(1.0)
        assert stats.index(0).sik == pytest.approx(8.0)
        assert stats.index(0).tj == pytest.approx(1e-3)

    def test_siv_divided_by_lookups_not_keys(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        # 100 keys requested but only 10 looked up (deduplicated run).
        acc.add_sample(make_sample("t1", lookups=10, siv=640.0))
        acc.add_sample(make_sample("t2", lookups=10, siv=640.0))
        assert acc.aggregate().index(0).siv == pytest.approx(64.0)

    def test_miss_ratio_from_probes(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        acc.add_sample(make_sample("t1", probes=100, misses=25))
        acc.add_sample(make_sample("t2", probes=100, misses=35))
        assert acc.aggregate().index(0).miss_ratio == pytest.approx(0.3)

    def test_theta_from_fm(self):
        acc = OperatorStatsAccumulator("op", 1, 1)
        # 1000 keys drawn from 100 distinct -> theta ~ 10
        for rep in range(10):
            for k in range(100):
                acc.add_key_to_sketch(0, k)
        acc.add_sample(make_sample("t1", n1=1000, keys=1000))
        theta = acc.aggregate().index(0).theta
        assert 4 <= theta <= 25

    def test_smap_recorded(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        acc.record_map_output(100, 5000.0)
        acc.add_sample(make_sample("t1"))
        assert acc.aggregate().smap == pytest.approx(50.0)

    def test_empty_aggregate_defaults(self):
        stats = OperatorStatsAccumulator("op", 1, 4).aggregate()
        assert stats.n1 == 0.0


class TestVarianceGate:
    def test_infinite_with_one_sample(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        acc.add_sample(make_sample("t1"))
        assert math.isinf(acc.relative_deviation())

    def test_zero_for_identical_samples(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        for t in ("a", "b", "c"):
            acc.add_sample(make_sample(t))
        assert acc.relative_deviation() == pytest.approx(0.0)

    def test_large_for_skewed_samples(self):
        acc = OperatorStatsAccumulator("op", 1, 4)
        acc.add_sample(make_sample("a", n1=10))
        acc.add_sample(make_sample("b", n1=1000))
        assert acc.relative_deviation() > 0.5


class TestCapacityBoundedMissRatio:
    def test_bound_applies_when_distinct_fits(self):
        idx = IndexStats(nik=1.0, miss_ratio=0.9, distinct=100.0)
        assert idx.capacity_bounded_miss_ratio(1000, 1024) == pytest.approx(0.1)

    def test_no_bound_when_distinct_exceeds_capacity(self):
        idx = IndexStats(nik=1.0, miss_ratio=0.9, distinct=5000.0)
        assert idx.capacity_bounded_miss_ratio(1000, 1024) == 0.9

    def test_never_increases(self):
        idx = IndexStats(nik=1.0, miss_ratio=0.05, distinct=100.0)
        assert idx.capacity_bounded_miss_ratio(200, 1024) == 0.05


class TestCatalog:
    def test_put_get(self):
        cat = StatisticsCatalog()
        stats = OperatorStats(n1=10)
        cat.put("sig", stats)
        assert cat.get("sig") is stats
        assert "sig" in cat and len(cat) == 1

    def test_missing_is_none(self):
        assert StatisticsCatalog().get("nope") is None

    def test_merge_preserves_measured_miss_ratio(self):
        cat = StatisticsCatalog()
        first = OperatorStats()
        first.per_index[0] = IndexStats(miss_ratio=0.2, probes_observed=1000)
        cat.put("sig", first)
        # A deduplicated run observed no probes: must not clobber R.
        second = OperatorStats()
        second.per_index[0] = IndexStats(miss_ratio=1.0, probes_observed=0)
        cat.put("sig", second)
        assert cat.get("sig").index(0).miss_ratio == pytest.approx(0.2)

    def test_merge_preserves_measured_siv_and_tj(self):
        cat = StatisticsCatalog()
        first = OperatorStats()
        first.per_index[0] = IndexStats(siv=512.0, tj=3e-3, lookups_observed=100)
        cat.put("sig", first)
        second = OperatorStats()
        second.per_index[0] = IndexStats(lookups_observed=0)
        cat.put("sig", second)
        got = cat.get("sig").index(0)
        assert got.siv == pytest.approx(512.0)
        assert got.tj == pytest.approx(3e-3)

    def test_clear(self):
        cat = StatisticsCatalog()
        cat.put("a", OperatorStats())
        cat.clear()
        assert len(cat) == 0
