"""Tests for the ``python -m repro.bench`` CLI (argument handling only;
the experiments themselves are exercised by the benchmarks)."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig11a", "fig12", "fig13", "sec53"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig11a", "fig11b", "fig11c", "fig11d", "fig11e",
            "fig11f", "fig12", "fig13", "sec53", "batching", "faults",
            "reuse-q3", "spec-q3", "build-q3",
            "fig11a-small", "fig11b-small", "fig11f-small",
        }
        for title, run, fmt in EXPERIMENTS.values():
            assert callable(run) and callable(fmt) and title

    def test_run_single_fast_experiment(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "remote" in out
