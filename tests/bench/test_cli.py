"""Tests for the ``python -m repro.bench`` CLI (argument handling only;
the experiments themselves are exercised by the benchmarks)."""

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig11a", "fig12", "fig13", "sec53"):
            assert name in out

    def test_unknown_experiment(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig11a", "fig11b", "fig11c", "fig11d", "fig11e",
            "fig11f", "fig12", "fig13", "sec53", "batching", "faults",
            "reuse-q3", "spec-q3", "build-q3",
            "fig11a-small", "fig11b-small", "fig11f-small",
        }
        for title, run, fmt in EXPERIMENTS.values():
            assert callable(run) and callable(fmt) and title

    def test_run_single_fast_experiment(self, capsys):
        assert main(["fig12"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out
        assert "remote" in out


class TestLiveFlag:
    @pytest.fixture(autouse=True)
    def _reset_obs_config(self):
        from repro.obs.config import set_live_rules, set_trace_dir

        yield
        set_trace_dir(None)
        set_live_rules(None)

    def test_live_requires_trace(self, capsys):
        assert main(["--live", "fig12"]) == 2
        assert "--live requires --trace" in capsys.readouterr().err

    def test_live_resolves_default_rule_file(self, tmp_path):
        import os

        from repro.obs.config import get_live_rules

        assert main(["--list", "--trace", str(tmp_path), "--live"]) == 0
        expected = os.path.join("benchmarks", "slo_rules.json")
        if os.path.exists(expected):
            assert get_live_rules() == expected
        else:
            assert get_live_rules() == ""

    def test_live_passes_explicit_rule_file(self, tmp_path):
        from repro.obs.config import get_live_rules

        rules = tmp_path / "rules.json"
        rules.write_text("[]", encoding="utf-8")
        assert main(
            ["--list", "--trace", str(tmp_path), "--live", str(rules)]
        ) == 0
        assert get_live_rules() == str(rules)
