"""Tests for the benchmark harness itself."""

import pytest

from repro.bench.harness import (
    ExperimentRow,
    _equivalent,
    bench_cluster,
    format_table,
    run_all_modes,
    speedup,
)
from repro.core.accessor import IndexAccessor
from repro.core.ejobconf import IndexJobConf
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from tests.conftest import UserCityOperator


class TestBenchCluster:
    def test_paper_dimensions(self):
        cluster = bench_cluster()
        assert cluster.num_nodes == 12

    def test_scaled_overheads(self):
        tm = bench_cluster().time_model
        assert tm.job_startup_time < 3.0
        assert tm.task_startup_time < 0.15

    def test_latency_knob(self):
        assert bench_cluster(network_latency=2e-3).time_model.network_latency == 2e-3


class TestEquivalence:
    def test_exact_match(self):
        assert _equivalent([("a", 1)], [("a", 1)])

    def test_float_tolerance(self):
        assert _equivalent(1.0000000001, 1.0)
        assert not _equivalent(1.1, 1.0)

    def test_nested(self):
        assert _equivalent(("k", (1.0, "x")), ("k", (1.0000000001, "x")))

    def test_length_mismatch(self):
        assert not _equivalent([1], [1, 2])


class TestFormatTable:
    def test_renders_all_modes_present(self):
        rows = [ExperimentRow("x", {"Base": 2.0, "Cache": 1.0})]
        table = format_table("T", rows, modes=("Base", "Cache", "Idxloc"))
        assert "Base" in table and "Cache" in table
        assert "Idxloc" not in table  # absent everywhere -> dropped

    def test_missing_cell_shows_na(self):
        rows = [
            ExperimentRow("a", {"Base": 2.0, "Cache": 1.0}),
            ExperimentRow("b", {"Base": 3.0}),
        ]
        table = format_table("T", rows, modes=("Base", "Cache"))
        assert "n/a" in table

    def test_speedup_helper(self):
        row = ExperimentRow("x", {"Base": 4.0, "Cache": 2.0})
        assert speedup(row, "Base", "Cache") == 2.0
        assert row.speedup_over_base("Cache") == 2.0


class TestRunAllModes:
    @pytest.fixture
    def env(self):
        cluster = bench_cluster(num_nodes=4)
        dfs = DistributedFileSystem(cluster, block_size=8 * 1024)
        dfs.write(
            "/in", [(i, (f"user{i % 40:04d}", "x" * 30)) for i in range(2000)]
        )
        kv = DistributedKVStore("kv", cluster, service_time=2e-3)
        for u in range(40):
            kv.put_unique(f"user{u:04d}", f"city{u % 5}")

        def factory(name):
            job = IndexJobConf(name)
            job.set_input_paths("/in").set_output_path(f"/out/{name}")
            job.add_head_index_operator(
                UserCityOperator("op").add_index(IndexAccessor(kv))
            )
            job.set_mapper(FnMapper(lambda k, v: [(k, v)], "i"))
            job.set_reducer(
                FnReducer(lambda k, vs: [(k, len(vs))], "c"), num_reduce_tasks=4
            )
            return job

        return cluster, dfs, factory

    def test_runs_requested_modes(self, env):
        cluster, dfs, factory = env
        row = run_all_modes(
            cluster, dfs, factory, modes=("Base", "Cache"), label="t"
        )
        assert set(row.times) == {"Base", "Cache"}
        assert all(t > 0 for t in row.times.values())

    def test_skip_modes(self, env):
        cluster, dfs, factory = env
        row = run_all_modes(
            cluster, dfs, factory, modes=("Base", "Idxloc"), skip=("Idxloc",)
        )
        assert set(row.times) == {"Base"}

    def test_detects_divergent_outputs(self, env):
        cluster, dfs, factory = env
        calls = []

        def bad_factory(name):
            job = factory(name)
            if calls:  # second variant gets a different reducer
                job.set_reducer(
                    FnReducer(lambda k, vs: [(k, 0)], "zero"), num_reduce_tasks=4
                )
            calls.append(name)
            return job

        with pytest.raises(AssertionError):
            run_all_modes(cluster, dfs, bad_factory, modes=("Base", "Cache"))

    def test_optimized_profiles_then_plans(self, env):
        cluster, dfs, factory = env
        row = run_all_modes(
            cluster, dfs, factory, modes=("Base", "Optimized"), label="t2"
        )
        assert row.details["Optimized"].plan is not None
