"""Unit tests for partition schemes."""

import pytest

from repro.indices.partitioning import (
    ConsistentHashRing,
    HashPartitionScheme,
    RangePartitionScheme,
    round_robin_placements,
)

HOSTS = [f"node{i:02d}" for i in range(6)]


class TestRoundRobinPlacements:
    def test_shape(self):
        placements = round_robin_placements(HOSTS, 8, 3)
        assert len(placements) == 8
        assert all(len(p) == 3 for p in placements)

    def test_replicas_distinct(self):
        for p in round_robin_placements(HOSTS, 8, 3):
            assert len(set(p)) == 3

    def test_replication_capped(self):
        placements = round_robin_placements(HOSTS[:2], 4, 3)
        assert all(len(p) == 2 for p in placements)


class TestHashPartitionScheme:
    @pytest.fixture
    def scheme(self):
        return HashPartitionScheme(8, round_robin_placements(HOSTS, 8, 3))

    def test_partition_in_range(self, scheme):
        for key in range(100):
            assert 0 <= scheme.partition_of(key) < 8

    def test_deterministic(self, scheme):
        assert scheme.partition_of("k") == scheme.partition_of("k")

    def test_locations_per_partition(self, scheme):
        for p in range(8):
            assert len(scheme.locations(p)) == 3

    def test_all_hosts(self, scheme):
        assert set(scheme.all_hosts()) == set(HOSTS)

    def test_rejects_mismatched_placements(self):
        with pytest.raises(ValueError):
            HashPartitionScheme(4, [["a"]])

    def test_rejects_zero_partitions(self):
        with pytest.raises(ValueError):
            HashPartitionScheme(0, [])


class TestRangePartitionScheme:
    @pytest.fixture
    def scheme(self):
        return RangePartitionScheme(
            [10, 20, 30], round_robin_placements(HOSTS, 4, 2)
        )

    def test_routing(self, scheme):
        assert scheme.partition_of(5) == 0
        assert scheme.partition_of(10) == 0
        assert scheme.partition_of(11) == 1
        assert scheme.partition_of(25) == 2
        assert scheme.partition_of(1000) == 3

    def test_num_partitions(self, scheme):
        assert scheme.num_partitions == 4

    def test_boundaries_copied(self, scheme):
        b = scheme.boundaries
        b.append(99)
        assert scheme.boundaries == [10, 20, 30]

    def test_rejects_bad_placement_count(self):
        with pytest.raises(ValueError):
            RangePartitionScheme([1, 2], [["a"]])

    def test_ordering_invariant(self, scheme):
        """Keys in the same partition form a contiguous range."""
        parts = [scheme.partition_of(k) for k in range(50)]
        assert parts == sorted(parts)


class TestConsistentHashRing:
    @pytest.fixture
    def ring(self):
        return ConsistentHashRing(HOSTS, vnodes=16, replication=3)

    def test_partition_in_range(self, ring):
        for key in range(200):
            assert 0 <= ring.partition_of(key) < ring.num_partitions

    def test_vnode_count(self, ring):
        assert ring.num_partitions == 6 * 16

    def test_replicas_distinct_hosts(self, ring):
        for p in range(0, ring.num_partitions, 7):
            locs = ring.locations(p)
            assert len(locs) == 3
            assert len(set(locs)) == 3

    def test_key_distribution_roughly_even(self, ring):
        from collections import Counter

        owners = Counter(
            ring.locations(ring.partition_of(f"key{i}"))[0] for i in range(3000)
        )
        assert len(owners) == 6
        assert max(owners.values()) < 4 * min(owners.values())

    def test_stability_when_host_added(self):
        """Adding a host moves only a fraction of the keys (the point
        of consistent hashing)."""
        before = ConsistentHashRing(HOSTS, vnodes=32, replication=1)
        after = ConsistentHashRing(HOSTS + ["node99"], vnodes=32, replication=1)
        moved = 0
        for i in range(2000):
            key = f"key{i}"
            a = before.locations(before.partition_of(key))[0]
            b = after.locations(after.partition_of(key))[0]
            if a != b:
                moved += 1
        assert moved < 1200  # far fewer than all keys

    def test_rejects_empty_hosts(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])
