"""Tests for B-tree and R*-tree deletion."""

import random

import pytest

from repro.indices.btree import BTree
from repro.indices.rstar import RStarTree


class TestBTreeDelete:
    def test_delete_leaf_key(self):
        t = BTree(t=2)
        for k in range(10):
            t.insert(k, k)
        assert t.delete(5)
        assert t.search(5) == []
        assert len(t) == 9
        t.check_invariants()

    def test_delete_missing_returns_false(self):
        t = BTree(t=2)
        t.insert(1, 1)
        assert not t.delete(99)
        assert len(t) == 1

    def test_delete_removes_all_values_of_key(self):
        t = BTree(t=2)
        t.insert(1, "a")
        t.insert(1, "b")
        assert t.delete(1)
        assert t.search(1) == []
        assert t.num_entries == 0

    def test_delete_internal_keys(self):
        t = BTree(t=2)
        keys = list(range(100))
        for k in keys:
            t.insert(k, k)
        # delete in an order that hits internal nodes
        for k in range(0, 100, 7):
            assert t.delete(k)
            t.check_invariants()
        for k in range(100):
            expected = [] if k % 7 == 0 else [k]
            assert t.search(k) == expected

    def test_delete_everything_then_reuse(self):
        t = BTree(t=3)
        for k in range(60):
            t.insert(k, k)
        for k in range(60):
            assert t.delete(k)
            t.check_invariants()
        assert len(t) == 0
        t.insert(7, "back")
        assert t.search(7) == ["back"]

    def test_root_shrinks(self):
        t = BTree(t=2)
        for k in range(30):
            t.insert(k, k)
        height_before = t.height()
        for k in range(28):
            t.delete(k)
        assert t.height() <= height_before
        t.check_invariants()

    @pytest.mark.parametrize("t_degree", [2, 3, 8])
    def test_randomized_against_model(self, t_degree):
        rng = random.Random(t_degree)
        tree = BTree(t=t_degree)
        model = {}
        for _ in range(600):
            k = rng.randrange(120)
            if rng.random() < 0.55:
                tree.insert(k, k)
                model.setdefault(k, []).append(k)
            else:
                assert tree.delete(k) == (k in model)
                model.pop(k, None)
        tree.check_invariants()
        for k in range(120):
            assert tree.search(k) == model.get(k, [])
        assert len(tree) == len(model)

    def test_range_scan_after_deletes(self):
        t = BTree(t=3)
        for k in range(50):
            t.insert(k, k)
        for k in range(10, 20):
            t.delete(k)
        assert [k for k, _ in t.range_scan(5, 25)] == [5, 6, 7, 8, 9] + list(
            range(20, 26)
        )


class TestRStarDelete:
    def _build(self, n, seed=0, max_entries=6):
        rng = random.Random(seed)
        tree = RStarTree(max_entries=max_entries)
        pts = {}
        for i in range(n):
            p = (rng.random(), rng.random())
            tree.insert(p, i)
            pts[i] = p
        return tree, pts

    def test_delete_existing(self):
        tree, pts = self._build(50)
        assert tree.delete(pts[7], 7)
        assert len(tree) == 49
        tree.check_invariants()
        assert 7 not in [pid for _d, pid in tree.knn(pts[7], 50)]

    def test_delete_missing(self):
        tree, _pts = self._build(20)
        assert not tree.delete((2.0, 2.0), 999)
        assert len(tree) == 20

    def test_delete_wrong_payload_at_same_point(self):
        tree = RStarTree()
        tree.insert((0.5, 0.5), "a")
        assert not tree.delete((0.5, 0.5), "b")
        assert tree.delete((0.5, 0.5), "a")

    def test_duplicate_points_delete_one(self):
        tree = RStarTree()
        for i in range(5):
            tree.insert((0.3, 0.3), i)
        assert tree.delete((0.3, 0.3), 2)
        remaining = {pid for _d, pid in tree.knn((0.3, 0.3), 10)}
        assert remaining == {0, 1, 3, 4}

    def test_condense_keeps_invariants(self):
        tree, pts = self._build(200, seed=3)
        ids = list(pts)
        random.Random(4).shuffle(ids)
        for i in ids[:170]:
            assert tree.delete(pts[i], i)
            tree.check_invariants()
        assert len(tree) == 30

    def test_knn_exact_after_heavy_deletion(self):
        tree, pts = self._build(300, seed=5)
        for i in range(0, 300, 2):
            tree.delete(pts[i], i)
            del pts[i]
        q = (0.4, 0.6)
        brute = sorted(
            pts.items(),
            key=lambda kv: (kv[1][0] - q[0]) ** 2 + (kv[1][1] - q[1]) ** 2,
        )
        got = [pid for _d, pid in tree.knn(q, 10)]
        assert got == [pid for pid, _p in brute[:10]]

    def test_delete_to_empty_and_reinsert(self):
        tree, pts = self._build(40, seed=6)
        for i, p in pts.items():
            assert tree.delete(p, i)
        assert len(tree) == 0
        tree.insert((0.1, 0.1), "fresh")
        assert [pid for _d, pid in tree.knn((0.1, 0.1), 1)] == ["fresh"]
