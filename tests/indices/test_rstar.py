"""Unit tests for the R*-tree and the grid forest."""

import math
import random

import pytest

from repro.indices.rstar import GridRStarForest, Rect, RStarTree


def random_points(n, seed=0, lo=0.0, hi=1.0):
    rng = random.Random(seed)
    return [((rng.uniform(lo, hi), rng.uniform(lo, hi)), i) for i in range(n)]


def brute_knn(points, q, k):
    return [
        pid
        for _p, pid in sorted(
            points, key=lambda pr: (pr[0][0] - q[0]) ** 2 + (pr[0][1] - q[1]) ** 2
        )[:k]
    ]


class TestRect:
    def test_area_and_margin(self):
        r = Rect(0, 0, 2, 3)
        assert r.area() == 6
        assert r.margin() == 10

    def test_union(self):
        u = Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3))
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, 0, 3, 3)

    def test_enlargement(self):
        assert Rect(0, 0, 1, 1).enlargement(Rect(0, 0, 2, 1)) == 1.0

    def test_intersects(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_overlap_area(self):
        assert Rect(0, 0, 2, 2).overlap_area(Rect(1, 1, 3, 3)) == 1.0
        assert Rect(0, 0, 1, 1).overlap_area(Rect(5, 5, 6, 6)) == 0.0

    def test_min_dist2(self):
        r = Rect(0, 0, 1, 1)
        assert r.min_dist2((0.5, 0.5)) == 0.0
        assert r.min_dist2((2.0, 0.5)) == pytest.approx(1.0)
        assert r.min_dist2((2.0, 2.0)) == pytest.approx(2.0)

    def test_contains_point(self):
        r = Rect(0, 0, 1, 1)
        assert r.contains_point((0.0, 1.0))
        assert not r.contains_point((1.1, 0.5))


class TestRStarTreeStructure:
    def test_rejects_small_fanout(self):
        with pytest.raises(ValueError):
            RStarTree(max_entries=3)

    def test_len(self):
        t = RStarTree(max_entries=4)
        for p, pid in random_points(50):
            t.insert(p, pid)
        assert len(t) == 50

    @pytest.mark.parametrize("n", [1, 5, 60, 500])
    def test_invariants(self, n):
        t = RStarTree(max_entries=6)
        for p, pid in random_points(n, seed=n):
            t.insert(p, pid)
        t.check_invariants()

    def test_duplicate_points_allowed(self):
        t = RStarTree(max_entries=4)
        for i in range(30):
            t.insert((0.5, 0.5), i)
        t.check_invariants()
        assert len(t.knn((0.5, 0.5), 30)) == 30


class TestKnn:
    def test_empty_tree(self):
        assert RStarTree().knn((0, 0), 5) == []

    def test_k_zero(self):
        t = RStarTree()
        t.insert((0, 0), 1)
        assert t.knn((0, 0), 0) == []

    def test_k_larger_than_size(self):
        t = RStarTree()
        t.insert((0, 0), 1)
        assert [pid for _d, pid in t.knn((0, 0), 10)] == [1]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_brute_force(self, seed):
        points = random_points(400, seed=seed)
        t = RStarTree(max_entries=8)
        for p, pid in points:
            t.insert(p, pid)
        for q in [(0.5, 0.5), (0.0, 0.0), (0.9, 0.1)]:
            assert [pid for _d, pid in t.knn(q, 10)] == brute_knn(points, q, 10)

    def test_distances_sorted_and_correct(self):
        points = random_points(100, seed=9)
        t = RStarTree(max_entries=8)
        for p, pid in points:
            t.insert(p, pid)
        q = (0.3, 0.7)
        result = t.knn(q, 15)
        dists = [d for d, _ in result]
        assert dists == sorted(dists)
        by_id = dict((pid, p) for p, pid in points)
        for d, pid in result:
            p = by_id[pid]
            assert d == pytest.approx(math.dist(p, q))


class TestRangeSearch:
    def test_finds_all_inside(self):
        points = random_points(300, seed=4)
        t = RStarTree(max_entries=8)
        for p, pid in points:
            t.insert(p, pid)
        box = Rect(0.2, 0.2, 0.6, 0.6)
        expected = {pid for p, pid in points if box.contains_point(p)}
        assert set(t.range_search(box)) == expected

    def test_empty_region(self):
        t = RStarTree()
        t.insert((0.1, 0.1), 1)
        assert t.range_search(Rect(5, 5, 6, 6)) == []


class TestGridRStarForest:
    @pytest.fixture
    def forest(self, cluster):
        self.points = random_points(600, seed=11)
        return GridRStarForest(
            "grid", cluster, self.points, k=5, grid_x=3, grid_y=3, overlap=0.2
        )

    def test_lookup_returns_k(self, forest):
        assert len(forest.lookup((0.5, 0.5))) == 5

    def test_interior_query_exact(self, forest):
        q = (0.5, 0.5)
        assert forest.lookup(q) == brute_knn(self.points, q, 5)

    def test_high_recall_everywhere(self, forest):
        rng = random.Random(5)
        hits = total = 0
        for _ in range(50):
            q = (rng.random(), rng.random())
            exact = set(brute_knn(self.points, q, 5))
            got = set(forest.lookup(q))
            hits += len(exact & got)
            total += 5
        assert hits / total >= 0.9

    def test_partition_scheme_grid(self, forest):
        scheme = forest.partition_scheme
        assert scheme.num_partitions == 9
        assert scheme.partition_of((0.01, 0.01)) == 0

    def test_total_insertions_at_least_points(self, forest):
        # overlap duplicates boundary points into neighbour cells
        assert len(forest) >= 600

    def test_rejects_bad_key(self, forest):
        with pytest.raises(TypeError):
            forest.lookup("not-a-point")

    def test_rejects_empty(self, cluster):
        with pytest.raises(ValueError):
            GridRStarForest("g", cluster, [], k=5)
