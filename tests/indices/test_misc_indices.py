"""Unit tests for the inverted index, dynamic index, and cloud service."""

import pytest

from repro.indices.cloudservice import CloudServiceIndex
from repro.indices.dynamic import DynamicComputedIndex, KeywordTopicClassifier
from repro.indices.inverted import InvertedIndex, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Hello World") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert tokenize("a,b;c!") == ["a", "b", "c"]

    def test_keeps_apostrophes_and_digits(self):
        assert tokenize("don't stop 42") == ["don't", "stop", "42"]

    def test_empty(self):
        assert tokenize("") == []


class TestInvertedIndex:
    @pytest.fixture
    def idx(self):
        return InvertedIndex("inv").load(
            [
                (1, "big data map reduce map"),
                (2, "map of the city"),
                (3, "reduce reuse recycle"),
            ]
        )

    def test_postings_ranked_by_tf(self, idx):
        postings = idx.lookup("map")
        assert postings[0] == (1, 2)  # doc 1 has tf=2
        assert (2, 1) in postings

    def test_missing_term(self, idx):
        assert idx.lookup("zebra") == []

    def test_case_insensitive_lookup(self, idx):
        assert idx.lookup("MAP") == idx.lookup("map")

    def test_document_frequency(self, idx):
        assert idx.document_frequency("map") == 2
        assert idx.document_frequency("city") == 1

    def test_counts(self, idx):
        assert idx.num_docs == 3
        assert idx.num_terms > 5

    def test_fingerprint_stable_under_lookups(self, idx):
        fp = idx.fingerprint()
        idx.lookup("map")
        assert idx.fingerprint() == fp


class TestDynamicComputedIndex:
    def test_wraps_function(self):
        idx = DynamicComputedIndex("sq", lambda k: [k * k])
        assert idx.lookup(7) == [49]

    def test_scalar_result_wrapped(self):
        idx = DynamicComputedIndex("sq", lambda k: k * k)
        assert idx.lookup(3) == [9]

    def test_infinite_key_space(self):
        idx = DynamicComputedIndex("echo", lambda k: [k])
        for key in ("anything", 123, ("tu", "ple")):
            assert idx.lookup(key) == [key]

    def test_idempotent(self):
        idx = DynamicComputedIndex("sq", lambda k: [k * k])
        assert idx.lookup(5) == idx.lookup(5)

    def test_tuple_result_is_a_sequence_of_values(self):
        # Regression: a tuple used to be wrapped as [tuple]; any
        # non-string sequence is a sequence of result values.
        idx = DynamicComputedIndex("pair", lambda k: (k, k + 1))
        assert idx.lookup(4) == [4, 5]

    def test_list_result_passthrough(self):
        idx = DynamicComputedIndex("two", lambda k: [k, -k])
        assert idx.lookup(2) == [2, -2]

    def test_string_result_is_scalar(self):
        idx = DynamicComputedIndex("label", lambda k: f"topic-{k}")
        assert idx.lookup("x") == ["topic-x"]

    def test_bytes_result_is_scalar(self):
        idx = DynamicComputedIndex("blob", lambda k: b"abc")
        assert idx.lookup(1) == [b"abc"]

    def test_range_result_materialised(self):
        idx = DynamicComputedIndex("rng", lambda k: range(k))
        assert idx.lookup(3) == [0, 1, 2]

    def test_costlier_default_service_time(self):
        assert DynamicComputedIndex("x", lambda k: [k]).service_time() > 1e-3

    def test_no_partition_scheme(self):
        assert DynamicComputedIndex("x", lambda k: [k]).partition_scheme is None


class TestKeywordTopicClassifier:
    @pytest.fixture
    def clf(self):
        return KeywordTopicClassifier()

    def test_seed_words_classify(self, clf):
        assert clf.classify("the team won the game") == "sports"
        assert clf.classify("storm and rain forecast") == "weather"
        assert clf.classify("stock market earnings") == "finance"

    def test_total_mapping(self, clf):
        topic = clf.classify("completely unrelated gibberish xyzzy")
        assert topic in clf.topics

    def test_deterministic(self, clf):
        assert clf.classify("random text 42") == clf.classify("random text 42")

    def test_as_index(self, clf):
        idx = clf.as_index()
        assert idx.lookup("album concert tour") == ["music"]

    def test_custom_topics(self):
        clf = KeywordTopicClassifier({"food": ("pizza", "soup")})
        assert clf.classify("I love pizza") == "food"


class TestCloudServiceIndex:
    def test_dict_backend(self):
        svc = CloudServiceIndex("geo", {"1.1.1.1": "EU"})
        assert svc.lookup("1.1.1.1") == ["EU"]
        assert svc.lookup("2.2.2.2") == []

    def test_callable_backend(self):
        svc = CloudServiceIndex("f", lambda k: f"r-{k}")
        assert svc.lookup("x") == ["r-x"]

    def test_list_result_passthrough(self):
        svc = CloudServiceIndex("f", lambda k: [1, 2])
        assert svc.lookup("x") == [1, 2]

    def test_base_delay(self):
        svc = CloudServiceIndex("f", {})
        assert svc.service_time() == pytest.approx(0.8e-3)

    def test_extra_delay_adds(self):
        svc = CloudServiceIndex("f", {}, extra_delay=0.005)
        assert svc.service_time() == pytest.approx(5.8e-3)

    def test_set_extra_delay(self):
        svc = CloudServiceIndex("f", {})
        svc.set_extra_delay(0.002)
        assert svc.service_time() == pytest.approx(2.8e-3)

    def test_pay_per_use_accounting(self):
        svc = CloudServiceIndex("f", {"a": 1}, price_per_lookup=0.25)
        svc.lookup("a")
        svc.lookup("b")
        assert svc.total_charged == pytest.approx(0.5)

    def test_single_remote_host_no_partitions(self):
        svc = CloudServiceIndex("f", {})
        assert svc.partition_scheme is None
        assert svc.entry_host == "cloud-gateway"
        assert svc.hosts_for_key("anything") == []
