"""Unit tests for the in-job index build subsystem (``indices/build/``):
the build catalog, the incremental builder session, the offline bulk
build, and HAIL per-replica layouts."""

import math

import pytest

from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.build import (
    DEFAULT_BUILD_FRACTION,
    DEFAULT_NUM_BUCKETS,
    BuildCostModel,
    BuildSession,
    BuildState,
    IndexManager,
    bulk_build_job,
    covering_hosts,
    enable_layouts,
    layout_preference,
    replica_for_bucket,
    run_bulk_build,
)
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.counters import Counters
from repro.mapreduce.runtime import JobRunner
from repro.simcluster.cluster import Cluster


class _Ctx:
    """Minimal TaskContext stand-in for chain-stage unit tests."""

    def __init__(self):
        self.charged_time = 0.0
        self.counters = Counters()
        self.trace = None

    def charge(self, seconds):
        assert seconds >= 0
        self.charged_time += seconds


class _Collector:
    def __init__(self):
        self.items = []

    def collect(self, key, value):
        self.items.append((key, value))


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestBuildCostModel:
    def test_per_record_time_sums_phases(self):
        m = BuildCostModel()
        assert m.build_cpu_per_record == pytest.approx(
            m.extract_cpu_per_record + m.sort_cpu_per_record + m.merge_cpu_per_record
        )

    def test_incremental_build_time_linear(self):
        m = BuildCostModel()
        assert m.incremental_build_time(0) == 0.0
        assert m.incremental_build_time(200) == pytest.approx(
            2 * m.incremental_build_time(100)
        )

    def test_entry_footprint(self):
        m = BuildCostModel(entry_bytes=32.0)
        assert m.entry_footprint(10) == pytest.approx(320.0)


# ----------------------------------------------------------------------
# IndexManager (the build catalog)
# ----------------------------------------------------------------------
class TestIndexManager:
    def test_track_idempotent(self):
        mgr = IndexManager()
        a = mgr.track("orders")
        b = mgr.track("orders")
        assert a is b
        assert mgr.tracked() == ["orders"]

    def test_track_rejects_bad_bucket_count(self):
        with pytest.raises(ValueError):
            IndexManager().track("x", num_buckets=0)

    def test_untracked_is_fully_covered(self):
        mgr = IndexManager()
        assert mgr.coverage("ghost") == 1.0
        assert mgr.covered("ghost", "any-key")

    def test_advance_is_monotone_and_deterministic(self):
        mgr = IndexManager()
        mgr.track("i", num_buckets=48)
        seen = set()
        for _ in range(5):
            before = set(mgr.get("i").built)
            mgr.advance("i", 1.0 / 3.0)
            after = set(mgr.get("i").built)
            assert before <= after
            seen = after
        # Replaying the same schedule on a fresh manager reproduces it.
        other = IndexManager()
        other.track("i", num_buckets=48)
        for _ in range(5):
            other.advance("i", 1.0 / 3.0)
        assert other.get("i").built == seen

    @pytest.mark.parametrize("fraction", [1.0, 0.5, 1.0 / 3.0, 0.25, 0.3])
    def test_converges_in_ceil_inverse_fraction_commits(self, fraction):
        mgr = IndexManager()
        mgr.track("i", num_buckets=48)
        steps = 0
        while mgr.coverage("i") < 1.0:
            assert mgr.advance("i", fraction) > 0
            steps += 1
        assert steps == math.ceil(1.0 / fraction)
        assert mgr.advance("i", fraction) == 0  # saturated

    def test_advance_zero_fraction_is_noop(self):
        mgr = IndexManager()
        mgr.track("i")
        assert mgr.advance("i", 0.0) == 0
        assert mgr.coverage("i") == 0.0

    def test_coverage_tracks_bucket_share(self):
        mgr = IndexManager()
        mgr.track("i", num_buckets=48)
        mgr.advance("i", 1.0 / 3.0)
        assert mgr.coverage("i") == pytest.approx(16 / 48)

    def test_covered_follows_buckets(self):
        mgr = IndexManager()
        state = mgr.track("i", num_buckets=4)
        state.built = {state.bucket_of("k1")}
        assert mgr.covered("i", "k1")
        uncovered = next(
            k for k in (f"probe{n}" for n in range(100))
            if state.bucket_of(k) not in state.built
        )
        assert not mgr.covered("i", uncovered)

    def test_complete_marks_everything(self):
        mgr = IndexManager()
        mgr.track("i")
        mgr.complete("i")
        assert mgr.coverage("i") == 1.0

    def test_reset_drops_progress_and_bumps_epoch(self):
        mgr = IndexManager()
        mgr.track("i")
        mgr.complete("i")
        mgr.record_entries("i", 100, 24.0)
        epoch = mgr.reset("i")
        state = mgr.get("i")
        assert epoch == 1
        assert state.built == set()
        assert state.entries == 0
        assert state.bytes_built == 0.0

    def test_snapshot_restore_roundtrip(self):
        mgr = IndexManager()
        mgr.track("i", num_buckets=24)
        mgr.advance("i", 0.5)
        mgr.record_entries("i", 7, 24.0)
        snap = mgr.snapshot()
        mgr.complete("i")
        mgr.restore(snap)
        assert mgr.coverage("i") == pytest.approx(0.5)
        assert mgr.get("i").entries == 7

    def test_untracked_operations_raise(self):
        mgr = IndexManager()
        with pytest.raises(KeyError):
            mgr.advance("ghost", 0.5)
        with pytest.raises(KeyError):
            mgr.reset("ghost")

    def test_state_dict_roundtrip(self):
        state = BuildState(num_buckets=12, built={0, 3}, epoch=2, entries=9)
        assert BuildState.from_dict(state.to_dict()) == state


# ----------------------------------------------------------------------
# BuildSession (incremental builder lifecycle)
# ----------------------------------------------------------------------
def _kv(cluster, name="profiles"):
    kv = DistributedKVStore(name, cluster, service_time=1e-3)
    for u in range(40):
        kv.put_unique(f"user{u:02d}", f"city{u % 5}")
    return kv


class TestBuildSession:
    def test_rejects_bad_fraction(self, cluster):
        kv = _kv(cluster)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                BuildSession({kv.name: kv}, fraction=bad)

    def test_tracks_targets_at_zero_coverage(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        assert session.coverage(kv.name) == 0.0
        assert not session.covered(kv.name, "user00")

    def test_job_fraction_frozen_at_begin(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv}, fraction=1.0 / 3.0)
        session.begin_job()
        assert session._job_fraction[kv.name] == pytest.approx(1.0 / 3.0)
        # Progress mid-job must not change the frozen fraction.
        session.manager.complete(kv.name)
        assert session._job_fraction[kv.name] == pytest.approx(1.0 / 3.0)

    def test_begin_job_is_idempotent(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        session.begin_job()
        session.note_built(kv.name, 5, 0.01)
        session.begin_job()  # adaptive re-entry: must not zero state
        assert session.job_records(kv.name) == 5

    def test_commit_without_records_leaves_coverage(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        session.begin_job()
        session.commit_job()
        assert session.coverage(kv.name) == 0.0

    def test_commit_advances_only_built_indices(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv}, fraction=1.0 / 3.0)
        session.begin_job()
        session.note_built(kv.name, 100, 0.02)
        session.commit_job()
        assert session.coverage(kv.name) == pytest.approx(1.0 / 3.0)
        assert session.manager.get(kv.name).entries == 100
        assert session.job_debt(kv.name) == pytest.approx(0.02)

    def test_full_coverage_freezes_zero_fraction(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv}, fraction=0.5)
        session.manager.complete(kv.name)
        session.begin_job()
        assert session._job_fraction[kv.name] == 0.0

    def test_rebuild_bumps_service_epoch(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        session.manager.complete(kv.name)
        epoch = kv.epoch
        session.rebuild(kv.name)
        assert kv.epoch > epoch  # versions ReuseStore entries out
        assert session.coverage(kv.name) == 0.0

    def test_snapshot_restore(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv}, fraction=0.5)
        session.begin_job()
        session.note_built(kv.name, 10, 0.01)
        session.commit_job()
        snap = session.snapshot()
        session.manager.complete(kv.name)
        session.restore(snap)
        assert session.coverage(kv.name) == pytest.approx(0.5)
        assert session.job_debt(kv.name) == 0.0


class TestIndexBuilderFn:
    def test_passes_records_through_unmodified(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        session.begin_job()
        fn = session.builder_fn()
        ctx, out = _Ctx(), _Collector()
        fn.start(ctx)
        records = [(i, f"v{i}") for i in range(9)]
        for k, v in records:
            fn.process(k, v, out, ctx)
        assert out.items == records

    def test_finish_charges_frozen_fraction(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv}, fraction=1.0 / 3.0)
        session.begin_job()
        fn = session.builder_fn()
        ctx, out = _Ctx(), _Collector()
        fn.start(ctx)
        for i in range(90):
            fn.process(i, i, out, ctx)
        fn.finish(out, ctx)
        built = int(90 / 3)
        assert ctx.charged_time == pytest.approx(
            session.model.incremental_build_time(built)
        )
        totals = ctx.counters.group("build")
        assert totals["records_indexed"] == built
        assert session.job_records(kv.name) == built

    def test_zero_records_charge_nothing(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        session.begin_job()
        fn = session.builder_fn()
        ctx, out = _Ctx(), _Collector()
        fn.start(ctx)
        fn.finish(out, ctx)
        assert ctx.charged_time == 0.0
        assert ctx.counters.group("build") == {}

    def test_full_coverage_behaves_like_no_builder(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        session.manager.complete(kv.name)
        session.begin_job()
        fn = session.builder_fn()
        ctx, out = _Ctx(), _Collector()
        fn.start(ctx)
        for i in range(50):
            fn.process(i, i, out, ctx)
        fn.finish(out, ctx)
        assert ctx.charged_time == 0.0
        assert ctx.counters.group("build") == {}


# ----------------------------------------------------------------------
# Bulk build
# ----------------------------------------------------------------------
class TestBulkBuild:
    def test_job_requires_tracked_index(self, cluster):
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        with pytest.raises(KeyError):
            bulk_build_job(session, "ghost", "/in/x")

    def test_run_reaches_full_coverage(self, cluster):
        dfs = DistributedFileSystem(cluster, block_size=2 * 1024)
        records = [(i, "x" * 40) for i in range(300)]
        dfs.write("/in/bulk", records)
        kv = _kv(cluster)
        session = BuildSession({kv.name: kv})
        runner = JobRunner(cluster, dfs)
        result = run_bulk_build(session, kv.name, runner, "/in/bulk")
        assert session.coverage(kv.name) == 1.0
        assert result.coverage == 1.0
        assert result.records_indexed == len(records)
        assert result.sim_time > 0.0
        assert session.manager.get(kv.name).entries == len(records)
        assert result.job.counters.group("build")["records_indexed"] == len(
            records
        )


# ----------------------------------------------------------------------
# HAIL per-replica layouts
# ----------------------------------------------------------------------
class TestLayouts:
    def test_replica_for_bucket_residue_rule(self):
        assert replica_for_bucket(7, 3) == 1
        assert replica_for_bucket(7, 1) == 0
        assert replica_for_bucket(7, 0) == 0  # degenerate width clamps

    def test_preference_narrows_to_covering_replicas(self):
        mgr = IndexManager()
        state = mgr.track("i", num_buckets=48)
        mgr.set_layout_width("i", 3)
        prefer = layout_preference(mgr, "i")
        replicas = ["h0", "h1", "h2"]
        key = "user07"
        r = replica_for_bucket(state.bucket_of(key), 3)
        assert prefer(key, replicas) == [replicas[r]]
        assert covering_hosts(mgr, "i", key, replicas) == [replicas[r]]

    def test_width_one_defers_to_full_set(self):
        mgr = IndexManager()
        mgr.track("i")
        prefer = layout_preference(mgr, "i")
        assert prefer("k", ["a", "b"]) == ["a", "b"]

    def test_untracked_defers_to_full_set(self):
        prefer = layout_preference(IndexManager(), "ghost")
        assert prefer("k", ["a", "b"]) == ["a", "b"]

    def test_empty_match_defers_to_full_set(self):
        mgr = IndexManager()
        state = mgr.track("i", num_buckets=48)
        mgr.set_layout_width("i", 3)
        prefer = layout_preference(mgr, "i")
        key = "user07"
        # Fewer replicas than the residue demands: fall back to all.
        r = replica_for_bucket(state.bucket_of(key), 3)
        if r > 0:
            assert prefer(key, ["only"]) == ["only"] or r == 0

    def test_enable_layouts_tags_dfs_blocks(self, cluster):
        dfs = DistributedFileSystem(cluster, block_size=2 * 1024)
        dfs.write("/in/data", [(i, "x" * 50) for i in range(200)])
        mgr = IndexManager()
        mgr.track("orders")
        enable_layouts(mgr, "orders", replication=3, dfs=dfs, path="/in/data")
        assert mgr.get("orders").layout_width == 3
        for block in dfs.meta("/in/data").blocks:
            for position, host in enumerate(block.hosts):
                assert block.layouts[host] == (
                    f"orders/r{replica_for_bucket(position, 3)}"
                )
