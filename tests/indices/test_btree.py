"""Unit tests for the B-tree and distributed B-tree."""

import random

import pytest

from repro.indices.btree import BTree, DistributedBTree


class TestBTreeBasics:
    def test_empty_search(self):
        assert BTree().search(1) == []

    def test_insert_search(self):
        t = BTree(t=2)
        t.insert(5, "a")
        assert t.search(5) == ["a"]

    def test_duplicate_keys_accumulate(self):
        t = BTree(t=2)
        t.insert(5, "a")
        t.insert(5, "b")
        assert t.search(5) == ["a", "b"]
        assert len(t) == 1
        assert t.num_entries == 2

    def test_many_inserts_random_order(self):
        t = BTree(t=3)
        keys = list(range(2000))
        random.Random(0).shuffle(keys)
        for k in keys:
            t.insert(k, k * 10)
        for k in (0, 1, 999, 1999):
            assert t.search(k) == [k * 10]
        assert t.search(2000) == []
        assert len(t) == 2000

    def test_rejects_degenerate_degree(self):
        with pytest.raises(ValueError):
            BTree(t=1)

    def test_height_grows_logarithmically(self):
        t = BTree(t=2)
        for k in range(1000):
            t.insert(k, k)
        assert t.height() <= 12

    def test_string_keys(self):
        t = BTree(t=2)
        for w in ["pear", "apple", "fig", "date"]:
            t.insert(w, w.upper())
        assert t.search("fig") == ["FIG"]


class TestBTreeInvariants:
    @pytest.mark.parametrize("t", [2, 3, 8])
    @pytest.mark.parametrize("n", [1, 10, 300])
    def test_invariants_after_random_inserts(self, t, n):
        tree = BTree(t=t)
        keys = list(range(n))
        random.Random(t * n).shuffle(keys)
        for k in keys:
            tree.insert(k, k)
        tree.check_invariants()

    def test_invariants_with_duplicates(self):
        tree = BTree(t=2)
        rng = random.Random(7)
        for _ in range(500):
            tree.insert(rng.randrange(50), 1)
        tree.check_invariants()
        assert len(tree) == 50


class TestBTreeRangeScan:
    @pytest.fixture
    def tree(self):
        t = BTree(t=3)
        keys = list(range(0, 200, 2))  # even keys only
        random.Random(1).shuffle(keys)
        for k in keys:
            t.insert(k, f"v{k}")
        return t

    def test_inclusive_bounds(self, tree):
        assert [k for k, _ in tree.range_scan(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self, tree):
        assert [k for k, _ in tree.range_scan(11, 15)] == [12, 14]

    def test_empty_range(self, tree):
        assert tree.range_scan(11, 11) == []

    def test_full_range_sorted(self, tree):
        keys = [k for k, _ in tree.range_scan(-1, 1000)]
        assert keys == sorted(keys) == list(range(0, 200, 2))

    def test_items_ordered(self, tree):
        keys = [k for k, _vs in tree.items()]
        assert keys == sorted(keys)


class TestDistributedBTree:
    @pytest.fixture
    def dtree(self, cluster):
        return DistributedBTree(
            "dbt", cluster, [(k, k * 3) for k in range(500)], num_partitions=8
        )

    def test_lookup(self, dtree):
        assert dtree.lookup(123) == [369]
        assert dtree.lookup(9999) == []

    def test_len(self, dtree):
        assert len(dtree) == 500

    def test_partition_scheme_is_range_based(self, dtree):
        scheme = dtree.partition_scheme
        assert scheme.num_partitions == 8
        # contiguous keys map to non-decreasing partitions
        parts = [scheme.partition_of(k) for k in range(500)]
        assert parts == sorted(parts)

    def test_cross_partition_range_scan(self, dtree):
        got = dtree.range_scan(60, 70)
        assert [k for k, _ in got] == list(range(60, 71))

    def test_entry_host(self, dtree):
        assert dtree.entry_host is not None

    def test_rejects_empty(self, cluster):
        with pytest.raises(ValueError):
            DistributedBTree("x", cluster, [])

    def test_fewer_items_than_partitions(self, cluster):
        dt = DistributedBTree("x", cluster, [(1, "a"), (2, "b")], num_partitions=8)
        assert dt.lookup(1) == ["a"]
        assert dt.lookup(2) == ["b"]
