"""Unit tests for the distributed KV store."""

import pytest

from repro.common.errors import IndexLookupError
from repro.indices.kvstore import DistributedKVStore


@pytest.fixture
def kv(cluster):
    return DistributedKVStore("kv", cluster, num_partitions=8)


class TestBasicOps:
    def test_put_and_lookup(self, kv):
        kv.put("a", 1)
        assert kv.lookup("a") == [1]

    def test_multi_value_append(self, kv):
        kv.put("a", 1)
        kv.put("a", 2)
        assert kv.lookup("a") == [1, 2]

    def test_put_unique_overwrites(self, kv):
        kv.put_unique("a", 1)
        kv.put_unique("a", 2)
        assert kv.lookup("a") == [2]

    def test_missing_key_empty(self, kv):
        assert kv.lookup("nope") == []

    def test_strict_mode_raises(self, cluster):
        kv = DistributedKVStore("strict", cluster, strict=True)
        with pytest.raises(IndexLookupError):
            kv.lookup("nope")

    def test_load_bulk(self, kv):
        kv.load([(i, i * 2) for i in range(100)])
        assert kv.lookup(50) == [100]
        assert len(kv) == 100

    def test_lookup_returns_copy(self, kv):
        kv.put("a", 1)
        result = kv.lookup("a")
        result.append(99)
        assert kv.lookup("a") == [1]

    def test_put_unique_over_multivalued_key_fixes_size(self, kv):
        # Regression: put_unique over an existing multi-valued key used
        # to keep counting the dropped values, so __len__/fingerprint
        # drifted and the later delete() underflowed _size.
        kv.put("a", 1)
        kv.put("a", 2)
        kv.put("a", 3)
        assert len(kv) == 3
        kv.put_unique("a", 9)
        assert kv.lookup("a") == [9]
        assert len(kv) == 1
        assert kv.num_keys == 1
        assert kv.delete("a")
        assert len(kv) == 0

    def test_put_unique_size_over_fresh_and_single_keys(self, kv):
        kv.put_unique("a", 1)
        assert len(kv) == 1
        kv.put_unique("a", 2)
        assert len(kv) == 1
        kv.put("b", 1)
        kv.put_unique("b", 2)
        assert len(kv) == 2


class TestPartitioning:
    def test_keys_spread_over_partitions(self, kv):
        kv.load([(i, i) for i in range(500)])
        sizes = kv.partition_sizes()
        assert len(sizes) == 8
        assert all(s > 0 for s in sizes)

    def test_partition_scheme_exposed(self, kv):
        assert kv.partition_scheme is not None
        assert kv.partition_scheme.num_partitions == 8

    def test_hosts_for_key_are_replicas(self, kv, cluster):
        kv.put("a", 1)
        hosts = kv.hosts_for_key("a")
        assert len(hosts) == 3
        assert all(cluster.node_by_host(h) is not None for h in hosts)

    def test_entry_host(self, kv):
        assert kv.entry_host is not None


class TestAccounting:
    def test_lookups_counted(self, kv):
        kv.put("a", 1)
        kv.lookup("a")
        kv.lookup("a")
        kv.lookup("missing")
        assert kv.lookups_served == 3

    def test_reset(self, kv):
        kv.put("a", 1)
        kv.lookup("a")
        kv.reset_accounting()
        assert kv.lookups_served == 0

    def test_fingerprint_changes_with_content(self, kv):
        before = kv.fingerprint()
        kv.put("a", 1)
        assert kv.fingerprint() != before

    def test_fingerprint_stable_across_lookups(self, kv):
        kv.put("a", 1)
        fp = kv.fingerprint()
        kv.lookup("a")
        assert kv.fingerprint() == fp

    def test_num_keys_vs_len(self, kv):
        kv.put("a", 1)
        kv.put("a", 2)
        assert kv.num_keys == 1
        assert len(kv) == 2

    def test_service_time_default_and_custom(self, cluster):
        assert DistributedKVStore("d", cluster).service_time() == pytest.approx(0.5e-3)
        assert DistributedKVStore(
            "c", cluster, service_time=2e-3
        ).service_time() == pytest.approx(2e-3)
