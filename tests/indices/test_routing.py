"""Unit tests for the replica-aware lookup router.

The router's contract is sharp: deterministic, side-effect-free to
preview, zero simulated-time cost, and -- when idle -- byte-equivalent
to the historical first-live-replica choice. Everything here exercises
that contract directly; the end-to-end bit-identity of routed runs is
pinned by the differential suite in tests/mapreduce.
"""

import pytest

from repro.indices.base import MappingIndex
from repro.indices.kvstore import DistributedKVStore
from repro.indices.routing import (
    ROUTE_FIXED,
    ROUTE_LEAST_LOADED,
    ROUTE_POLICIES,
    ReplicaRouter,
)
from repro.mapreduce.counters import Counters
from repro.simcluster.faults import FaultPlan

REPLICAS = ("hostA", "hostB", "hostC")


def locate_all(key):
    """Every key lives on the same fully-live partition."""
    return REPLICAS, REPLICAS


class _Ctx:
    """Minimal stand-in for TaskContext: counters + charged time."""

    def __init__(self):
        self.counters = Counters()
        self.charged_time = 0.0
        self.trace = None


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown route policy"):
            ReplicaRouter(policy="random")

    def test_hot_threshold_floor(self):
        with pytest.raises(ValueError, match="hot_key_threshold"):
            ReplicaRouter(hot_key_threshold=1)

    def test_policies_constant(self):
        assert ROUTE_POLICIES == (ROUTE_FIXED, ROUTE_LEAST_LOADED)


class TestChoice:
    def test_idle_router_matches_fixed_first_choice(self):
        # All loads zero -> the least-loaded tie breaks in replica
        # order, i.e. exactly the fixed policy's pick.
        ll = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        fixed = ReplicaRouter(policy=ROUTE_FIXED)
        assert ll.assign(["k"], locate_all).groups == {"hostA": [0]}
        assert fixed.assign(["k"], locate_all).groups == {"hostA": [0]}

    def test_least_loaded_spreads_evenly(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        router.assign([f"k{i}" for i in range(6)], locate_all)
        assert router.load_snapshot() == {"hostA": 2, "hostB": 2, "hostC": 2}

    def test_fixed_policy_never_rebalances(self):
        router = ReplicaRouter(policy=ROUTE_FIXED)
        decision = router.assign([f"k{i}" for i in range(6)], locate_all)
        assert decision.rebalanced == 0
        assert decision.hot_spread == 0
        assert router.load_snapshot() == {"hostA": 6}

    def test_load_is_cumulative_across_batches(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        router.assign(["a"], locate_all)  # hostA takes 1
        decision = router.assign(["b"], locate_all)
        assert list(decision.groups) == ["hostB"]  # balanced across calls

    def test_dead_replica_never_chosen(self):
        def locate(key):
            return REPLICAS, ("hostB", "hostC")

        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        decision = router.assign([f"k{i}" for i in range(4)], locate)
        assert set(decision.groups) == {"hostB", "hostC"}
        # Keys landed off the partition's *placement-order* head, so
        # they count as rebalanced relative to the live pool head only.
        assert router.load_snapshot() == {"hostB": 2, "hostC": 2}

    def test_no_live_replica_falls_back_to_placement_list(self):
        # The retry layer, not the router, owns failure semantics: with
        # nothing live the router still names a host so the lookup can
        # fail (and be retried) through the normal path.
        def locate(key):
            return REPLICAS, ()

        router = ReplicaRouter(policy=ROUTE_FIXED)
        assert list(router.assign(["k"], locate).groups) == ["hostA"]


class TestHotKeys:
    def test_hot_key_round_robins_across_pool(self):
        router = ReplicaRouter(
            policy=ROUTE_LEAST_LOADED, hot_key_threshold=3
        )
        hosts = []
        for _ in range(7):
            (host,) = router.assign(["hot"], locate_all).groups
            hosts.append(host)
        # Routes 1-2 are plain least-loaded; from the threshold-crossing
        # 3rd route on, the key round-robins the full pool.
        assert hosts[2:] == ["hostA", "hostB", "hostC", "hostA", "hostB"]
        assert router.hot_keys_spread == 5

    def test_fixed_policy_has_no_hot_path(self):
        router = ReplicaRouter(policy=ROUTE_FIXED, hot_key_threshold=2)
        for _ in range(5):
            decision = router.assign(["hot"], locate_all)
        assert decision.hot_spread == 0
        assert router.load_snapshot() == {"hostA": 5}

    def test_single_replica_key_never_spreads(self):
        def locate(key):
            return ("only",), ("only",)

        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED, hot_key_threshold=2)
        for _ in range(5):
            decision = router.assign(["hot"], locate)
        assert decision.hot_spread == 0


class TestPlanAndAssign:
    def test_plan_is_side_effect_free(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        keys = [f"k{i}" for i in range(5)]
        first = router.plan(keys, locate_all)
        second = router.plan(keys, locate_all)
        assert first == second
        assert router.load_snapshot() == {}
        assert router.batches_routed == 0

    def test_plan_previews_the_next_assign(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED, hot_key_threshold=3)
        keys = ["a", "b", "a", "c", "a"]
        planned = router.plan(keys, locate_all)
        decision = router.assign(keys, locate_all)
        # groups carry positions; re-key them to key lists to compare.
        assigned = {
            host: [keys[i] for i in positions]
            for host, positions in decision.groups.items()
        }
        assert planned == assigned

    def test_assign_groups_positions_in_first_use_order(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        decision = router.assign(["a", "b", "c", "d"], locate_all)
        assert decision.keys == 4
        flat = sorted(i for pos in decision.groups.values() for i in pos)
        assert flat == [0, 1, 2, 3]
        assert list(decision.groups) == ["hostA", "hostB", "hostC"]

    def test_rebalanced_counts_off_head_routes(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED)
        decision = router.assign(["a", "b", "c"], locate_all)
        # hostA takes the first key (head choice), B and C take the
        # next two under load balance -> 2 rebalanced.
        assert decision.rebalanced == 2
        assert router.rebalanced == 2


class TestCharge:
    def test_charge_fills_route_counters_and_no_time(self):
        router = ReplicaRouter(policy=ROUTE_LEAST_LOADED, hot_key_threshold=2)
        ctx = _Ctx()
        keys = ["hot", "hot", "hot", "x"]
        decision = router.assign(keys, locate_all)
        router.charge(ctx, decision)
        group = ctx.counters.group("route")
        assert group["batches"] == 1
        assert group["keys"] == 4
        assert group["hot_spread"] == decision.hot_spread > 0
        assert group["rebalanced"] == decision.rebalanced
        assert ctx.charged_time == 0.0  # routing is free

    def test_charge_without_ctx_is_a_noop(self):
        router = ReplicaRouter()
        router.charge(None, router.assign(["k"], locate_all))

    def test_zero_counters_stay_absent(self):
        router = ReplicaRouter(policy=ROUTE_FIXED)
        ctx = _Ctx()
        router.charge(ctx, router.assign(["k"], locate_all))
        group = ctx.counters.group("route")
        assert "hot_spread" not in group and "rebalanced" not in group

    def test_load_snapshot_is_a_copy(self):
        router = ReplicaRouter()
        router.assign(["k"], locate_all)
        snap = router.load_snapshot()
        snap["hostA"] = 999
        assert router.load_snapshot()["hostA"] == 1


class TestIndexIntegration:
    def test_set_router_rejected_on_non_replicated_index(self):
        idx = MappingIndex("flat", {"a": [1]})
        with pytest.raises(ValueError, match="does not support"):
            idx.set_router(ReplicaRouter())

    def test_set_router_none_always_allowed(self):
        idx = MappingIndex("flat", {"a": [1]})
        assert idx.set_router(None) is idx

    def _kv(self, cluster):
        kv = DistributedKVStore("routed", cluster, num_partitions=8)
        kv.load([(f"k{i}", i) for i in range(64)])
        return kv

    def test_multiget_plan_delegates_to_router_plan(self, cluster):
        kv = self._kv(cluster)
        keys = [f"k{i}" for i in range(16)]
        baseline = kv.multiget_plan(keys)
        kv.set_router(ReplicaRouter(policy=ROUTE_LEAST_LOADED))
        routed = kv.multiget_plan(keys)
        assert routed == kv.multiget_plan(keys)  # still side-effect-free
        assert sorted(k for g in routed.values() for k in g) == sorted(keys)
        # Routing regroups hosts but never changes the key population.
        assert sorted(k for g in baseline.values() for k in g) == sorted(keys)

    def test_routed_lookup_batch_serves_identical_values(self, cluster):
        keys = [f"k{i}" for i in range(32)] + ["missing"]
        plain = self._kv(cluster).lookup_batch(list(keys))
        routed_kv = self._kv(cluster)
        routed_kv.set_router(ReplicaRouter(policy=ROUTE_LEAST_LOADED))
        ctx = _Ctx()
        assert routed_kv.lookup_batch(list(keys), ctx) == plain
        assert ctx.counters.group("route")["keys"] == len(keys)

    def test_router_avoids_dead_hosts_via_locate(self, cluster):
        kv = self._kv(cluster)
        kv.set_fault_plan(FaultPlan(seed=1, dead_hosts=("node01",)))
        kv.set_router(ReplicaRouter(policy=ROUTE_LEAST_LOADED))
        plan = kv.multiget_plan([f"k{i}" for i in range(32)])
        assert plan and "node01" not in plan
