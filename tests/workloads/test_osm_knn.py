"""Tests for the OSM generator, EFind kNN join, and H-zkNNJ baseline."""

import random

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.workloads import hzknnj, knn, osm


@pytest.fixture(scope="module")
def points():
    a = osm.generate_points(osm.OsmConfig(num_points=1500, seed=5), "A")
    b = osm.generate_points(osm.OsmConfig(num_points=1500, seed=6), "B")
    return a, b


class TestOsmGenerator:
    def test_counts_and_ids(self, points):
        a, _ = points
        assert len(a) == 1500
        assert [rid for _p, rid in a] == list(range(1500))

    def test_points_in_bounds(self, points):
        xmin, ymin, xmax, ymax = osm.US_BOUNDS
        for (x, y), _rid in points[0]:
            assert xmin <= x <= xmax
            assert ymin <= y <= ymax

    def test_clustered(self, points):
        """Most points concentrate around cluster centres: the spread of
        nearest-neighbour distances is far below uniform."""
        a, _ = points
        rng = random.Random(0)
        sample = rng.sample(a, 60)
        dists = []
        for p, rid in sample:
            best = min(
                (p[0] - q[0]) ** 2 + (p[1] - q[1]) ** 2
                for q, qid in a
                if qid != rid
            )
            dists.append(best**0.5)
        assert sorted(dists)[len(dists) // 2] < 0.5

    def test_different_tags_differ(self):
        a = osm.generate_points(osm.OsmConfig(num_points=100), "A")
        b = osm.generate_points(osm.OsmConfig(num_points=100), "B")
        assert a != b

    def test_write_points_roundtrip(self, paper_dfs, points):
        a, _ = points
        osm.write_points(paper_dfs, "/osm/a", a)
        back = paper_dfs.read("/osm/a")
        assert back[0] == (0, a[0][0])


class TestEFindKnnJoin:
    @pytest.fixture(scope="class")
    def env(self, points):
        from repro.dfs.filesystem import DistributedFileSystem
        from repro.simcluster.cluster import Cluster

        a, b = points
        cluster = Cluster(num_nodes=12, map_slots_per_node=2)
        dfs = DistributedFileSystem(cluster, block_size=16 * 1024)
        osm.write_points(dfs, "/osm/a", a)
        # Generous overlap: at this (sparse) test scale the k-th
        # neighbour is often far from the query, so the overlap band
        # must be wide for boundary queries to stay exact.
        cfg = knn.KnnConfig(k=5, overlap=0.3)
        index = knn.build_spatial_index(cluster, b, cfg)
        return cluster, dfs, index, cfg

    def test_idxloc_matches_reference(self, env, points):
        cluster, dfs, index, cfg = env
        a, _b = points
        job = knn.make_knnj_job("knn-i", "/osm/a", "/out/knn-i", index)
        res = EFindRunner(cluster, dfs).run(
            job,
            mode="forced",
            forced_strategy=Strategy.IDXLOC,
            extra_job_targets=["head0"],
        )
        assert dict(res.output) == knn.reference_knnj(a, index)

    def test_each_a_point_gets_k_neighbours(self, env, points):
        cluster, dfs, index, cfg = env
        job = knn.make_knnj_job("knn-k", "/osm/a", "/out/knn-k", index)
        res = EFindRunner(cluster, dfs).run(
            job, mode="forced", forced_strategy=Strategy.CACHE
        )
        assert len(res.output) == len(points[0])
        for _rid, neighbours in res.output:
            assert len(neighbours) == cfg.k

    def test_recall_vs_exact(self, env, points):
        cluster, dfs, index, cfg = env
        a, b = points
        rng = random.Random(1)
        sample = rng.sample(a, 60)
        recall = 0.0
        for p, rid in sample:
            exact = set(knn.exact_knn(p, b, cfg.k))
            got = set(index.lookup(p))
            recall += len(exact & got) / cfg.k
        assert recall / len(sample) >= 0.85

    def test_map_only_job(self, env):
        cluster, dfs, index, cfg = env
        job = knn.make_knnj_job("knn-m", "/osm/a", "/out/knn-m", index)
        assert job.reducer is None


class TestZOrder:
    def test_zvalue_deterministic(self):
        p = (-100.0, 40.0)
        assert hzknnj.zvalue(p) == hzknnj.zvalue(p)

    def test_zvalue_range(self):
        assert 0 <= hzknnj.zvalue((-125.0, 24.0))
        assert hzknnj.zvalue((-66.0, 49.0)) < (1 << 32)

    def test_nearby_points_nearby_z(self):
        """Z-order preserves locality on average: a tiny perturbation
        changes z far less than a cross-country move."""
        base = (-100.0, 40.0)
        near = (-100.001, 40.001)
        far = (-70.0, 26.0)
        dz_near = abs(hzknnj.zvalue(base) - hzknnj.zvalue(near))
        dz_far = abs(hzknnj.zvalue(base) - hzknnj.zvalue(far))
        assert dz_near < dz_far

    def test_interleave_bits(self):
        # x=0b11, y=0b00 -> z has x bits at even positions
        assert hzknnj._interleave(0b11, 0b00, 2) == 0b0101
        assert hzknnj._interleave(0b00, 0b11, 2) == 0b1010


class TestHzknnj:
    @pytest.fixture(scope="class")
    def result(self, points):
        from repro.dfs.filesystem import DistributedFileSystem
        from repro.simcluster.cluster import Cluster

        a, b = points
        cluster = Cluster(num_nodes=12, map_slots_per_node=2)
        dfs = DistributedFileSystem(cluster, block_size=16 * 1024)
        osm.write_points(dfs, "/osm/a", a)
        osm.write_points(dfs, "/osm/b", b)
        cfg = hzknnj.HzknnjConfig(k=5, alpha=3, num_partitions=8)
        return hzknnj.run_hzknnj(cluster, dfs, "/osm/a", "/osm/b", cfg), a, b

    def test_every_a_point_answered(self, result):
        res, a, _b = result
        assert set(res.neighbours) == {rid for _p, rid in a}

    def test_k_neighbours_each(self, result):
        res, _a, _b = result
        assert all(len(ns) == 5 for ns in res.neighbours.values())

    def test_recall_reasonable(self, result):
        res, a, b = result
        rng = random.Random(2)
        sample = rng.sample(a, 60)
        recall = 0.0
        for p, rid in sample:
            exact = set(knn.exact_knn(p, b, 5))
            recall += len(exact & set(res.neighbours[rid])) / 5
        assert recall / len(sample) >= 0.6

    def test_three_jobs_run(self, result):
        res, _a, _b = result
        assert len(res.job_results) == 3
        assert res.sim_time > 0

    def test_more_shifts_improve_recall(self, points):
        from repro.dfs.filesystem import DistributedFileSystem
        from repro.simcluster.cluster import Cluster

        a, b = points
        cluster = Cluster(num_nodes=12, map_slots_per_node=2)
        dfs = DistributedFileSystem(cluster, block_size=16 * 1024)
        osm.write_points(dfs, "/osm/a", a)
        osm.write_points(dfs, "/osm/b", b)
        rng = random.Random(3)
        sample = rng.sample(a, 40)

        def recall_for(alpha):
            res = hzknnj.run_hzknnj(
                cluster, dfs, "/osm/a", "/osm/b",
                hzknnj.HzknnjConfig(k=5, alpha=alpha, num_partitions=8),
            )
            total = 0.0
            for p, rid in sample:
                exact = set(knn.exact_knn(p, b, 5))
                total += len(exact & set(res.neighbours[rid])) / 5
            return total / len(sample)

        assert recall_for(3) >= recall_for(1) - 0.05
