"""Tests for Example 2.1 (the Twitter topic pipeline)."""

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.workloads import twitter


@pytest.fixture(scope="module")
def env():
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster

    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=32 * 1024)
    cfg = twitter.TwitterConfig(num_tweets=3000, num_users=500)
    twitter.generate_tweets(dfs, "/tweets", cfg)
    profiles = twitter.build_user_profile_index(cluster, cfg)
    kb = twitter.build_knowledge_base()
    events = twitter.build_event_database(cluster, cfg)
    return cluster, dfs, cfg, profiles, kb, events


def make_job(env, name):
    cluster, dfs, cfg, profiles, kb, events = env
    return twitter.make_topic_job(
        name, "/tweets", f"/out/{name}", profiles, kb, events, cfg
    )


class TestGenerators:
    def test_tweet_count(self, env):
        _c, dfs, cfg, *_ = env
        assert dfs.meta("/tweets").num_records == cfg.num_tweets

    def test_profile_index_covers_users(self, env):
        *_, cfg, profiles, _kb, _ev = env[2], env[2], env[3], env[4], env[5]
        cfg, profiles = env[2], env[3]
        assert profiles.num_keys == cfg.num_users
        city = profiles.lookup("@user00000")[0][0]
        assert city.startswith("city")

    def test_event_db_covers_city_days(self, env):
        cfg, events = env[2], env[5]
        assert events.num_keys == cfg.num_cities * cfg.num_days
        assert events.lookup(("city00", 0))

    def test_knowledge_base_is_dynamic(self, env):
        kb = env[4]
        assert kb.lookup("the team won the game in the league") == ["sports"]
        # infinite key space: any input gets a topic
        assert kb.lookup("zzz unknown words qqq")


class TestPipeline:
    def test_matches_reference(self, env):
        cluster, dfs, cfg, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "tw1"), mode="forced", forced_strategy=Strategy.CACHE
        )
        assert dict(res.output) == twitter.reference_topics(dfs, "/tweets", cfg)

    def test_three_placements_configured(self, env):
        job = make_job(env, "tw2")
        assert len(job.head_operators) == 1
        assert len(job.body_operators) == 1
        assert len(job.tail_operators) == 1

    def test_baseline_same_answer(self, env):
        cluster, dfs, cfg, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "tw3"), mode="forced", forced_strategy=Strategy.BASELINE
        )
        assert dict(res.output) == twitter.reference_topics(dfs, "/tweets", cfg)

    def test_repart_on_user_profile_same_answer(self, env):
        cluster, dfs, cfg, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "tw4"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        assert dict(res.output) == twitter.reference_topics(dfs, "/tweets", cfg)

    def test_dynamic_same_answer(self, env):
        cluster, dfs, cfg, *_ = env
        res = EFindRunner(cluster, dfs).run(make_job(env, "tw5"), mode="dynamic")
        assert dict(res.output) == twitter.reference_topics(dfs, "/tweets", cfg)

    def test_output_shape(self, env):
        cluster, dfs, cfg, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "tw6"), mode="forced", forced_strategy=Strategy.CACHE
        )
        (city, day), (top, events) = res.output[0]
        assert city.startswith("city")
        assert 0 <= day < cfg.num_days
        assert len(top) <= cfg.topk
        assert len(events) == 2
