"""Tests for the LOG workload."""

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.workloads import weblog


@pytest.fixture
def cfg():
    return weblog.LogConfig(
        num_events=4000, num_ips=600, num_urls=300, num_log_files=3
    )


@pytest.fixture
def log_paths(paper_dfs, cfg):
    return weblog.generate(paper_dfs, "/in/log", cfg)


class TestGenerator:
    def test_event_count(self, paper_dfs, log_paths, cfg):
        total = sum(len(paper_dfs.read(p)) for p in log_paths)
        assert total == cfg.num_events

    def test_one_file_per_server(self, log_paths, cfg):
        assert len(log_paths) == cfg.num_log_files

    def test_sessions_striped_across_files(self, paper_dfs, log_paths):
        """Cross-machine redundancy: the same IP appears in several
        log files."""
        per_file_ips = [
            {ip for _eid, (ip, _ts, _url) in paper_dfs.read(p)} for p in log_paths
        ]
        shared = per_file_ips[0] & per_file_ips[1]
        assert len(shared) > len(per_file_ips[0]) / 2

    def test_local_redundancy_within_file(self, paper_dfs, log_paths):
        """An IP visits several URLs in a short period (sessions)."""
        records = paper_dfs.read(log_paths[0])
        ips = [ip for _eid, (ip, _ts, _url) in records]
        assert len(set(ips)) < len(ips)

    def test_deterministic(self, paper_dfs, cfg):
        a = weblog.generate(paper_dfs, "/det/a", cfg)
        b = weblog.generate(paper_dfs, "/det/b", cfg)
        assert paper_dfs.read(a[0]) == paper_dfs.read(b[0])

    def test_event_shape(self, paper_dfs, log_paths):
        eid, (ip, ts, url) = paper_dfs.read(log_paths[0])[0]
        assert isinstance(eid, int)
        assert ip.startswith("10.")
        assert url.startswith("/page/")


class TestGeoService:
    def test_deterministic_region(self, cfg):
        geo = weblog.build_geo_service(cfg)
        assert geo.lookup("10.0.0.1") == geo.lookup("10.0.0.1")

    def test_region_in_range(self, cfg):
        geo = weblog.build_geo_service(cfg)
        region = geo.lookup("10.1.2.3")[0]
        assert region.startswith("region")
        assert 0 <= int(region[6:]) < cfg.num_regions

    def test_delay_knob(self, cfg):
        geo = weblog.build_geo_service(cfg, extra_delay=0.005)
        assert geo.service_time() == pytest.approx(0.8e-3 + 5e-3)


class TestTopKJob:
    def test_matches_reference(self, paper_cluster, paper_dfs, log_paths, cfg):
        geo = weblog.build_geo_service(cfg, extra_delay=0.001)
        job = weblog.make_topk_job("log-j", log_paths, "/out/log-j", geo, k=5)
        res = EFindRunner(paper_cluster, paper_dfs).run(
            job, mode="forced", forced_strategy=Strategy.CACHE
        )
        assert dict(res.output) == weblog.reference_topk(
            paper_dfs, log_paths, cfg, k=5
        )

    def test_repart_same_answer(self, paper_cluster, paper_dfs, log_paths, cfg):
        geo = weblog.build_geo_service(cfg)
        job = weblog.make_topk_job("log-r", log_paths, "/out/log-r", geo, k=5)
        res = EFindRunner(paper_cluster, paper_dfs).run(
            job,
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        assert dict(res.output) == weblog.reference_topk(
            paper_dfs, log_paths, cfg, k=5
        )

    def test_topk_truncates(self, paper_cluster, paper_dfs, log_paths, cfg):
        geo = weblog.build_geo_service(cfg)
        job = weblog.make_topk_job("log-k", log_paths, "/out/log-k", geo, k=2)
        res = EFindRunner(paper_cluster, paper_dfs).run(
            job, mode="forced", forced_strategy=Strategy.CACHE
        )
        for _region, top in res.output:
            assert len(top) <= 2
            counts = [c for _url, c in top]
            assert counts == sorted(counts, reverse=True)
