"""Tests for the text-analysis workload."""

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.workloads import textanalysis as ta


@pytest.fixture(scope="module")
def env():
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster

    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=16 * 1024)
    cfg = ta.TextConfig(num_documents=600, corpus_documents=300)
    ta.generate_documents(dfs, "/docs", cfg)
    acronyms = ta.build_acronym_dictionary(cluster)
    background = ta.build_background_index(cfg)
    return cluster, dfs, cfg, acronyms, background


class TestGenerators:
    def test_document_count(self, env):
        _c, dfs, cfg, *_ = env
        assert dfs.meta("/docs").num_records == cfg.num_documents

    def test_documents_contain_acronyms(self, env):
        _c, dfs, *_ = env
        text = " ".join(t for _id, t in dfs.read("/docs")[:200])
        assert any(a.upper() in text.split() for a in ta.ACRONYMS)

    def test_acronym_dictionary_complete(self, env):
        acronyms = env[3]
        for short, phrase in ta.ACRONYMS.items():
            assert acronyms.lookup(short) == [phrase]

    def test_background_index_populated(self, env):
        background = env[4]
        assert background.num_docs == env[2].corpus_documents
        assert background.lookup("index")  # a common vocabulary word


class TestAcronymExpansion:
    def test_operator_expands(self, env):
        from repro.core.accessor import IndexAccessor
        from repro.core.operator import IndexInput, IndexOutput
        from repro.mapreduce.api import OutputCollector

        op = ta.AcronymExpandOperator("x").add_index(IndexAccessor(env[3]))
        ii = IndexInput(1)
        key, value = op.pre_process(1, "great ML and DB work", ii)
        assert ii.keys(0) == ["ml", "db"]
        out = IndexOutput(
            (tuple(ii.keys(0)),),
            ((("machine learning",), ("database",)),),
        )
        collector = OutputCollector()
        op.post_process(key, value, out, collector)
        ((_k, expanded),) = collector.records
        assert "machine learning" in expanded
        assert "database" in expanded
        assert "ml" not in expanded.split()


class TestPipeline:
    @pytest.mark.parametrize("strategy", [Strategy.BASELINE, Strategy.CACHE])
    def test_matches_reference(self, env, strategy):
        cluster, dfs, cfg, acronyms, background = env
        job = ta.make_top_term_job(
            f"ta-{strategy.value}", "/docs", f"/out/ta-{strategy.value}",
            acronyms, background, cfg,
        )
        res = EFindRunner(cluster, dfs).run(
            job, mode="forced", forced_strategy=strategy
        )
        got = dict(res.output)
        want = ta.reference_top_terms(dfs, "/docs", background, cfg)
        assert got == want

    def test_cache_pays_off_on_zipf_terms(self, env):
        """Zipf-skewed terms repeat constantly: the cache slashes
        inverted-index lookups."""
        cluster, dfs, cfg, acronyms, background = env
        runner = EFindRunner(cluster, dfs)
        background.reset_accounting()
        runner.run(
            ta.make_top_term_job("ta-b", "/docs", "/o1", acronyms, background, cfg),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        base_lookups = background.lookups_served
        background.reset_accounting()
        runner.run(
            ta.make_top_term_job("ta-c", "/docs", "/o2", acronyms, background, cfg),
            mode="forced",
            forced_strategy=Strategy.CACHE,
        )
        assert background.lookups_served < base_lookups / 5

    def test_dynamic_same_answer(self, env):
        cluster, dfs, cfg, acronyms, background = env
        res = EFindRunner(cluster, dfs).run(
            ta.make_top_term_job("ta-dyn", "/docs", "/o3", acronyms, background, cfg),
            mode="dynamic",
        )
        assert dict(res.output) == ta.reference_top_terms(
            dfs, "/docs", background, cfg
        )
