"""Tests for the TPC-H workload: generator invariants and query
correctness under multiple strategies."""

import math

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.workloads import tpch
from repro.workloads.tpch import schema as sc


@pytest.fixture(scope="module")
def data():
    return tpch.generate(tpch.TpchConfig(sf=0.0008))


class TestGenerator:
    def test_cardinalities(self, data):
        cfg = data.config
        assert len(data.nation) == 25
        assert len(data.orders) == cfg.num_orders
        assert len(data.part) == cfg.num_parts
        assert len(data.partsupp) == cfg.num_parts * cfg.suppliers_per_part

    def test_lineitem_clustered_by_orderkey(self, data):
        """dbgen property Q3's cache hits depend on."""
        orderkeys = [item[sc.L_ORDERKEY] for _lid, item in data.lineitem]
        assert orderkeys == sorted(orderkeys)

    def test_suppkeys_unclustered(self, data):
        """Q9's supplier lookups must have no locality."""
        suppkeys = [item[sc.L_SUPPKEY] for _lid, item in data.lineitem]
        adjacent_equal = sum(
            1 for a, b in zip(suppkeys, suppkeys[1:]) if a == b
        )
        assert adjacent_equal < len(suppkeys) / 3

    def test_lineitem_suppkey_stocked_for_part(self, data):
        """Every (partkey, suppkey) in lineitem exists in partsupp."""
        ps_keys = {ps[sc.PS_KEY] for ps in data.partsupp}
        for _lid, item in data.lineitem:
            assert (item[sc.L_PARTKEY], item[sc.L_SUPPKEY]) in ps_keys

    def test_orders_reference_customers(self, data):
        for o in data.orders:
            assert 0 <= o[sc.O_CUST] < data.config.num_customers

    def test_shipdate_after_orderdate(self, data):
        orders = {o[sc.O_KEY]: o for o in data.orders}
        for _lid, item in data.lineitem:
            assert item[sc.L_SHIPDATE] > orders[item[sc.L_ORDERKEY]][sc.O_DATE]

    def test_part_names_contain_colors(self, data):
        colored = sum(
            1
            for p in data.part
            if any(c in p[sc.P_NAME] for c in sc.PART_COLORS)
        )
        assert colored == len(data.part)

    def test_deterministic(self):
        a = tpch.generate(tpch.TpchConfig(sf=0.0005, seed=1))
        b = tpch.generate(tpch.TpchConfig(sf=0.0005, seed=1))
        assert a.lineitem == b.lineitem

    def test_dup10_write(self, data, paper_dfs):
        tpch.write_lineitem(paper_dfs, "/li1", data, dup_factor=1)
        tpch.write_lineitem(paper_dfs, "/li10", data, dup_factor=10)
        assert paper_dfs.meta("/li10").num_records == 10 * paper_dfs.meta(
            "/li1"
        ).num_records
        ids = [lid for lid, _ in paper_dfs.read("/li10")]
        assert len(set(ids)) == len(ids), "duplicated line ids must stay unique"


class TestDateHelpers:
    def test_make_and_year(self):
        assert sc.make_date(1995, 3, 15) == 19950315
        assert sc.date_year(19950315) == 1995

    def test_add_days_rolls_months(self):
        assert sc.add_days(19950328, 5) == 19950403

    def test_add_days_rolls_years(self):
        assert sc.date_year(sc.add_days(19981225, 40)) == 1999


@pytest.fixture(scope="module")
def queries_env(data):
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster

    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=32 * 1024)
    tpch.write_lineitem(dfs, "/lineitem", data)
    indexes = tpch.build_indexes(cluster, data)
    return cluster, dfs, indexes


def assert_close(got: dict, want: dict):
    assert set(got) == set(want)
    for key in got:
        assert math.isclose(got[key], want[key], rel_tol=1e-6), key


class TestQ3:
    @pytest.mark.parametrize(
        "strategy", [Strategy.BASELINE, Strategy.CACHE, Strategy.REPART]
    )
    def test_matches_reference(self, queries_env, data, strategy):
        cluster, dfs, indexes = queries_env
        job = tpch.make_q3_job(
            f"q3-{strategy.value}", "/lineitem", f"/out/q3-{strategy.value}", indexes
        )
        res = EFindRunner(cluster, dfs).run(
            job,
            mode="forced",
            forced_strategy=strategy,
            extra_job_targets=["head0"],
        )
        assert_close(dict(res.output), tpch.reference_q3(data))

    def test_reference_nonempty(self, data):
        assert tpch.reference_q3(data)


class TestQ9:
    def test_matches_reference(self, queries_env, data):
        cluster, dfs, indexes = queries_env
        job = tpch.make_q9_job("q9-t", "/lineitem", "/out/q9-t", indexes)
        res = EFindRunner(cluster, dfs).run(
            job, mode="forced", forced_strategy=Strategy.CACHE
        )
        assert_close(dict(res.output), tpch.reference_q9(data))

    def test_repart_on_supplier_same_answer(self, queries_env, data):
        cluster, dfs, indexes = queries_env
        job = tpch.make_q9_job("q9-r", "/lineitem", "/out/q9-r", indexes)
        res = EFindRunner(cluster, dfs).run(
            job,
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],  # the Supplier operator
        )
        assert_close(dict(res.output), tpch.reference_q9(data))

    def test_five_operators_chained(self, queries_env):
        cluster, dfs, indexes = queries_env
        job = tpch.make_q9_job("q9-c", "/lineitem", "/out/q9-c", indexes)
        assert len(job.head_operators) == 5

    def test_groups_are_nation_year(self, queries_env, data):
        cluster, dfs, indexes = queries_env
        job = tpch.make_q9_job("q9-g", "/lineitem", "/out/q9-g", indexes)
        res = EFindRunner(cluster, dfs).run(
            job, mode="forced", forced_strategy=Strategy.CACHE
        )
        for (nation, year), _amount in res.output:
            assert nation in sc.NATION_NAMES
            assert 1992 <= year <= 1998
