"""Tests for the synthetic workload."""

import pytest

from repro.core.costmodel import Strategy
from repro.core.runner import EFindRunner
from repro.workloads import synthetic


@pytest.fixture
def cfg():
    return synthetic.SyntheticConfig(
        num_records=3000, num_distinct_keys=1500, result_size=256
    )


class TestGenerator:
    def test_record_count(self, paper_dfs, cfg):
        synthetic.generate(paper_dfs, "/syn", cfg)
        assert paper_dfs.meta("/syn").num_records == cfg.num_records

    def test_keys_in_domain(self, paper_dfs, cfg):
        synthetic.generate(paper_dfs, "/syn", cfg)
        for _rid, (key, _payload) in paper_dfs.read("/syn"):
            assert 0 <= key < cfg.num_distinct_keys

    def test_theta_about_two(self, paper_dfs, cfg):
        """On average every key occurs ~twice (paper Section 5.2)."""
        synthetic.generate(paper_dfs, "/syn", cfg)
        keys = [k for _rid, (k, _p) in paper_dfs.read("/syn")]
        theta = len(keys) / len(set(keys))
        assert 1.5 < theta < 3.5

    def test_value_payload_size(self, paper_dfs):
        cfg = synthetic.SyntheticConfig(num_records=10, record_value_size=77)
        synthetic.generate(paper_dfs, "/syn77", cfg)
        _rid, (_k, payload) = paper_dfs.read("/syn77")[0]
        assert len(payload) == 77


class TestIndex:
    def test_index_value_size_honoured(self):
        assert len(synthetic.index_value_for(5, 10)) == 10
        assert len(synthetic.index_value_for(5, 30_000)) == 30_000

    def test_index_value_deterministic(self):
        assert synthetic.index_value_for(7, 64) == synthetic.index_value_for(7, 64)

    def test_build_index_covers_all_keys(self, paper_cluster, cfg):
        idx = synthetic.build_index(paper_cluster, cfg)
        assert idx.num_keys == cfg.num_distinct_keys
        assert len(idx.lookup(0)[0]) == cfg.result_size


class TestJoinJob:
    @pytest.mark.parametrize(
        "strategy", [Strategy.CACHE, Strategy.REPART, Strategy.IDXLOC]
    )
    def test_matches_reference(self, paper_cluster, paper_dfs, cfg, strategy):
        synthetic.generate(paper_dfs, "/syn", cfg)
        idx = synthetic.build_index(paper_cluster, cfg)
        job = synthetic.make_join_job(
            f"syn-{strategy.value}", "/syn", f"/out/syn-{strategy.value}", idx
        )
        res = EFindRunner(paper_cluster, paper_dfs).run(
            job,
            mode="forced",
            forced_strategy=strategy,
            extra_job_targets=["head0"],
        )
        assert dict(res.output) == synthetic.reference_join(paper_dfs, "/syn", cfg)

    def test_cache_useless_here(self, paper_cluster, paper_dfs):
        """Far more distinct keys than cache entries -> high miss rate
        (the Figure 11(f) observation)."""
        cfg = synthetic.SyntheticConfig(num_records=6000, num_distinct_keys=3000)
        synthetic.generate(paper_dfs, "/syn-big", cfg)
        idx = synthetic.build_index(paper_cluster, cfg)
        runner = EFindRunner(paper_cluster, paper_dfs)
        idx.reset_accounting()
        runner.run(
            synthetic.make_join_job("syn-cache", "/syn-big", "/o1", idx),
            mode="forced",
            forced_strategy=Strategy.CACHE,
        )
        # The cache saves almost nothing.
        assert idx.lookups_served > cfg.num_records * 0.6
