"""Unit tests for H-zkNNJ internals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import hzknnj
from repro.workloads.osm import US_BOUNDS


class TestRangePartition:
    def test_routing(self):
        bounds = [10, 20, 30]
        assert hzknnj._range_partition(5, bounds) == 0
        assert hzknnj._range_partition(10, bounds) == 0
        assert hzknnj._range_partition(15, bounds) == 1
        assert hzknnj._range_partition(35, bounds) == 3

    def test_empty_bounds_single_partition(self):
        assert hzknnj._range_partition(123, []) == 0

    @given(st.integers(0, 1 << 32), st.lists(st.integers(0, 1 << 32), max_size=10))
    @settings(max_examples=50)
    def test_partition_consistent_with_sorted_bounds(self, z, raw):
        bounds = sorted(raw)
        p = hzknnj._range_partition(z, bounds)
        assert 0 <= p <= len(bounds)
        if p > 0:
            assert bounds[p - 1] < z
        if p < len(bounds):
            assert z <= bounds[p]


class TestQuantileBoundaries:
    def test_even_split(self):
        samples = [(0, z) for z in range(1000)]
        bounds = hzknnj._quantile_boundaries(samples, 1, 4)
        assert len(bounds) == 1
        assert len(bounds[0]) == 3
        assert bounds[0] == sorted(bounds[0])
        # roughly the quartiles
        assert 200 < bounds[0][0] < 300
        assert 450 < bounds[0][1] < 550

    def test_per_shift_separation(self):
        samples = [(0, z) for z in range(100)] + [(1, z * 10) for z in range(100)]
        bounds = hzknnj._quantile_boundaries(samples, 2, 2)
        assert len(bounds) == 2
        assert bounds[1][0] > bounds[0][0]

    def test_empty_shift(self):
        bounds = hzknnj._quantile_boundaries([], 2, 4)
        assert bounds == [[], []]


class TestBisect:
    def test_positions(self):
        assert hzknnj._bisect([1, 4, 9], 0) == 0
        assert hzknnj._bisect([1, 4, 9], 5) == 2
        assert hzknnj._bisect([1, 4, 9], 100) == 3
        assert hzknnj._bisect([], 5) == 0


class TestZValueProperties:
    floats_x = st.floats(min_value=US_BOUNDS[0], max_value=US_BOUNDS[2])
    floats_y = st.floats(min_value=US_BOUNDS[1], max_value=US_BOUNDS[3])

    @given(floats_x, floats_y)
    @settings(max_examples=100)
    def test_z_in_range(self, x, y):
        z = hzknnj.zvalue((x, y))
        assert 0 <= z < (1 << 32)

    @given(floats_x, floats_y)
    @settings(max_examples=50)
    def test_out_of_bounds_clamped(self, x, y):
        inside = hzknnj.zvalue((x, y))
        assert hzknnj.zvalue((x - 1000, y - 1000)) == hzknnj.zvalue(
            (US_BOUNDS[0], US_BOUNDS[1])
        )
        assert inside >= 0

    def test_monotone_along_axes_coarse(self):
        # moving strictly within one grid cell axis keeps order on the
        # interleaved bits at the coarse level
        z_sw = hzknnj.zvalue((US_BOUNDS[0], US_BOUNDS[1]))
        z_ne = hzknnj.zvalue((US_BOUNDS[2], US_BOUNDS[3]))
        assert z_sw == 0
        assert z_ne == (1 << 32) - 1


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = hzknnj.HzknnjConfig()
        assert cfg.alpha == 2
        assert cfg.epsilon == pytest.approx(0.003)
