"""Unit tests for the adaptive-decision audit log."""

import json
import math

from repro.obs.audit import (
    VERDICT_REPLAN,
    VERDICT_VARIANCE_GATE,
    AdaptiveAuditLog,
)


def record_kwargs(**over):
    kw = dict(
        job="j",
        phase="map",
        sim_time=1.0,
        verdict=VERDICT_VARIANCE_GATE,
        variance_threshold=0.25,
        plan_change_cost=0.1,
        scale=2.0,
        gate=[{"operator": "op", "num_samples": 1,
               "relative_deviation": None, "stable": False}],
    )
    kw.update(over)
    return kw


class TestAuditLog:
    def test_sequence_numbers_assigned_in_order(self):
        log = AdaptiveAuditLog()
        a = log.record_evaluation(**record_kwargs())
        b = log.record_evaluation(**record_kwargs(phase="reduce"))
        assert (a.seq, b.seq) == (0, 1)
        assert len(log) == 2

    def test_replans_and_applied_views(self):
        log = AdaptiveAuditLog()
        log.record_evaluation(**record_kwargs())
        replan = log.record_evaluation(
            **record_kwargs(
                verdict=VERDICT_REPLAN,
                current_cost=2.0,
                new_cost=1.0,
                current_plan="a",
                new_plan="b",
            )
        )
        assert log.replans == [replan]
        assert log.applied == []
        log.mark_applied(replan, applied_at=3.0, cutover="mid-map",
                         map_tasks_reused=24)
        assert log.applied == [replan]
        assert replan.applied_at == 3.0
        assert replan.reuse == {"cutover": "mid-map", "map_tasks_reused": 24}

    def test_for_job_filters(self):
        log = AdaptiveAuditLog()
        log.record_evaluation(**record_kwargs(job="a"))
        log.record_evaluation(**record_kwargs(job="b"))
        assert [r.job for r in log.for_job("b")] == ["b"]

    def test_improvement_property(self):
        log = AdaptiveAuditLog()
        r = log.record_evaluation(
            **record_kwargs(current_cost=2.0, new_cost=0.5)
        )
        assert r.improvement == 1.5
        assert log.record_evaluation(**record_kwargs()).improvement is None


class TestJsonSafety:
    def test_inf_and_nan_become_none(self):
        log = AdaptiveAuditLog()
        log.record_evaluation(
            **record_kwargs(
                gate=[{"operator": "op", "num_samples": 1,
                       "relative_deviation": math.inf, "stable": False}],
                current_cost=math.nan,
            )
        )
        (row,) = log.to_dicts()
        assert row["gate"][0]["relative_deviation"] is None
        assert row["current_cost"] is None
        json.dumps(row, allow_nan=False)  # strict JSON round-trips

    def test_to_dict_carries_all_inputs(self):
        log = AdaptiveAuditLog()
        log.record_evaluation(**record_kwargs())
        (row,) = log.to_dicts()
        for key in ("seq", "job", "phase", "sim_time", "verdict",
                    "variance_threshold", "plan_change_cost", "scale",
                    "gate", "operators", "applied", "reuse"):
            assert key in row


class TestSummaryLines:
    def test_empty_log(self):
        assert AdaptiveAuditLog().summary_lines() == [
            "no adaptive evaluations recorded"
        ]

    def test_summary_mentions_verdict_and_reuse(self):
        log = AdaptiveAuditLog()
        r = log.record_evaluation(
            **record_kwargs(
                verdict=VERDICT_REPLAN,
                current_cost=2.0,
                new_cost=1.0,
                current_plan="p0",
                new_plan="p1",
            )
        )
        log.mark_applied(r, applied_at=2.5, cutover="mid-reduce")
        text = "\n".join(log.summary_lines())
        assert "replan" in text
        assert "[applied]" in text
        assert "p0 -> p1" in text
        assert "cutover=mid-reduce" in text
