"""The observer-effect guarantee and end-to-end trace acceptance.

Tracing must be purely passive: attaching an :class:`Observability` to
a runner cannot change simulated times, counters, or outputs, and with
tracing disabled the runtime takes the exact pre-observability code
paths (``ctx.trace`` stays None).
"""

import pytest

from repro.obs import Observability
from repro.obs.export import (
    max_event_depth,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace import DEPTH_OP, DEPTH_TASK


class TestObserverEffect:
    def test_tracing_changes_nothing_simulated(self, efind_env):
        plain = efind_env.runner().run(
            efind_env.make_job("oe-plain"), mode="dynamic"
        )
        obs = Observability()
        traced = efind_env.runner(obs=obs).run(
            efind_env.make_job("oe-traced"), mode="dynamic"
        )
        assert traced.sim_time == plain.sim_time
        assert traced.counters.to_dict() == plain.counters.to_dict()
        assert sorted(traced.output) == sorted(plain.output)
        assert len(obs.tracer) > 0  # and yet the trace is rich

    def test_disabled_observability_keeps_null_trace(self, efind_env):
        obs = Observability(enabled=False)
        plain = efind_env.runner().run(
            efind_env.make_job("oe-off-ref"), mode="dynamic"
        )
        res = efind_env.runner(obs=obs).run(
            efind_env.make_job("oe-off"), mode="dynamic"
        )
        assert len(obs.tracer) == 0
        assert res.sim_time == plain.sim_time
        # the driver-side audit log still works without tracing
        assert len(obs.audit) >= 1

    def test_forced_mode_tracing_is_also_passive(self, efind_env):
        from repro.core.costmodel import Strategy

        plain = efind_env.runner().run(
            efind_env.make_job("oe-f"),
            mode="forced",
            forced_strategy=Strategy.CACHE,
        )
        obs = Observability()
        traced = efind_env.runner(obs=obs).run(
            efind_env.make_job("oe-f2"),
            mode="forced",
            forced_strategy=Strategy.CACHE,
        )
        assert traced.sim_time == plain.sim_time


class TestLiveObserverEffect:
    """The live leg: a telemetry bus with the full default rule set
    subscribed is as passive as tracing itself."""

    def test_subscribed_bus_changes_nothing_simulated(self, efind_env):
        from repro.obs.live import LiveSession

        plain = efind_env.runner().run(
            efind_env.make_job("oe-live-ref"), mode="dynamic"
        )
        session = LiveSession()  # aggregators + engine + snapshot attached
        obs = Observability(bus=session.bus)
        live = efind_env.runner(obs=obs).run(
            efind_env.make_job("oe-live"), mode="dynamic"
        )
        session.finish()
        assert session.bus.published > 0  # the bus really streamed
        assert live.sim_time == plain.sim_time
        assert live.counters.to_dict() == plain.counters.to_dict()
        assert sorted(live.output) == sorted(plain.output)

    def test_alert_timeline_byte_deterministic_across_processes(self, tmp_path):
        """The exported alerts.jsonl of the same run is byte-identical
        under different ``PYTHONHASHSEED`` values: no iteration-order
        or hash-randomized state leaks into the timeline."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            import sys
            from repro.bench.harness import bench_cluster
            from repro.core.runner import EFindRunner
            from repro.dfs.filesystem import DistributedFileSystem
            from repro.obs import Observability
            from repro.obs.live import LiveSession
            from repro.simcluster.faults import FaultPlan
            from repro.workloads import tpch

            cluster = bench_cluster()
            dfs = DistributedFileSystem(cluster, block_size=12 * 1024)
            data = tpch.generate(tpch.TpchConfig(sf=0.002))
            tpch.write_lineitem(dfs, "/in/lineitem", data)
            indexes = tpch.build_indexes(cluster, data, service_time=6e-3)
            session = LiveSession()
            obs = Observability(bus=session.bus)
            EFindRunner(
                cluster, dfs, obs=obs,
                fault_plan=FaultPlan(seed=7, straggler_factors={"node05": 4.0}),
            ).run(
                tpch.make_q3_job("hs", "/in/lineitem", "/out/hs", indexes),
                mode="dynamic",
            )
            session.finish()
            session.export_alerts(sys.argv[1])
            """
        )
        outputs = []
        for seed in ("0", "31337"):
            out = tmp_path / f"alerts-{seed}.jsonl"
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (env.get("PYTHONPATH"), "src") if p
            )
            subprocess.run(
                [sys.executable, "-c", script, str(out)],
                check=True,
                env=env,
                cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
            )
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]
        assert b"wave-straggler" in outputs[0]  # the run really alerted


class TestTraceStructure:
    def test_spans_cover_all_levels(self, efind_env):
        obs = Observability()
        res = efind_env.runner(obs=obs).run(
            efind_env.make_job("ts-levels"), mode="dynamic"
        )
        t = obs.tracer
        cats = {s.cat for s in t.spans}
        assert {"job", "stage", "phase", "wave", "task", "op"} <= cats
        assert t.max_depth() >= DEPTH_OP
        (job_span,) = t.spans_named("efind:ts-levels")
        assert job_span.start == res.start_time
        assert job_span.end == res.end_time

    def test_every_task_attempt_has_a_span(self, efind_env):
        obs = Observability()
        res = efind_env.runner(obs=obs).run(
            efind_env.make_job("ts-tasks"), mode="dynamic"
        )
        task_spans = obs.tracer.spans_named("task")
        attempts = sum(
            len(sr.map_runs) + len(sr.reduce_runs)
            for sr in res.stage_results
        )
        assert len(task_spans) == attempts
        for s in task_spans:
            assert s.depth == DEPTH_TASK
            assert s.args["kind"] in ("map", "reduce")
            # tasks nest inside their job span
            assert res.start_time <= s.start <= s.end <= res.end_time

    def test_metrics_fold_lookup_latencies(self, efind_env):
        obs = Observability()
        efind_env.runner(obs=obs).run(
            efind_env.make_job("ts-metrics"), mode="dynamic"
        )
        snap = obs.metrics.to_dict()
        assert snap["counters"]["trace.lookup.count"] > 0
        hist = snap["histograms"]["trace.lookup.latency_s"]
        assert hist["count"] == snap["counters"]["trace.lookup.count"]
        # job counters snapshotted next to trace metrics
        assert any(k.startswith("job.ts-metrics.") for k in snap["gauges"])


@pytest.fixture(scope="module")
def q3_traced():
    """One dynamic TPC-H Q3 run (the Figure 11(b) workload) with full
    observability attached."""
    from repro.bench.harness import bench_cluster
    from repro.core.runner import EFindRunner
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.workloads import tpch

    cluster = bench_cluster()
    dfs = DistributedFileSystem(cluster, block_size=12 * 1024)
    data = tpch.generate(tpch.TpchConfig(sf=0.002))
    tpch.write_lineitem(dfs, "/in/lineitem", data)
    indexes = tpch.build_indexes(cluster, data, service_time=6e-3)
    obs = Observability()
    runner = EFindRunner(cluster, dfs, obs=obs)
    result = runner.run(
        tpch.make_q3_job("q3-traced", "/in/lineitem", "/out/q3-traced", indexes),
        mode="dynamic",
    )
    return obs, result


class TestTpchQ3Acceptance:
    """The PR's acceptance criterion: the exported Chrome trace for a
    TPC-H Q3 run loads with >= 4 span nesting levels and a complete
    Algorithm-1 audit record for every re-optimization point."""

    def test_chrome_trace_validates_with_deep_nesting(self, q3_traced):
        obs, _result = q3_traced
        payload = to_chrome_trace(obs.tracer)
        assert validate_chrome_trace(payload) == []
        assert max_event_depth(payload) >= 4

    def test_audit_complete_for_every_evaluation(self, q3_traced):
        obs, result = q3_traced
        assert len(obs.audit) >= 1
        for record in obs.audit.records:
            assert record.verdict in (
                "no_relevant_operators",
                "variance_gate_failed",
                "improvement_below_threshold",
                "same_strategies",
                "replan",
            )
            assert record.gate or record.verdict == "no_relevant_operators"
            if record.verdict == "replan":
                assert record.operators, "replan without cost detail"
                for op in record.operators:
                    for table in op["strategies"].values():
                        assert set(table["costs"]) == {
                            "base", "cache", "repart", "idxloc", "partial",
                        }
        if result.replanned:
            assert obs.audit.applied, "applied replan missing from audit"
            assert obs.audit.applied[0].reuse.get("cutover") in (
                "mid-map", "mid-reduce",
            )

    def test_export_round_trips(self, q3_traced, tmp_path):
        obs, _result = q3_traced
        paths = obs.export(str(tmp_path), "q3")
        from repro.obs.report import build_report

        report = build_report(paths["trace"])
        assert "per-phase critical path" in report
        assert "adaptive evaluation" in report
