"""The bench harness's ``--trace`` double-run path."""

import json
import os

from repro.bench.harness import run_all_modes
from repro.obs.config import get_trace_dir, set_trace_dir
from repro.obs.export import validate_chrome_trace


class TestHarnessTracing:
    def test_no_trace_dir_means_no_rerun_and_no_artifacts(self, efind_env):
        assert get_trace_dir() is None
        row = run_all_modes(
            efind_env.cluster,
            efind_env.dfs,
            lambda name: efind_env.make_job(name),
            modes=("Base",),
            label="ht-off",
        )
        assert row.trace_wall == {}
        assert row.trace_paths == {}

    def test_trace_dir_triggers_double_run_and_export(
        self, efind_env, tmp_path
    ):
        set_trace_dir(str(tmp_path))
        try:
            row = run_all_modes(
                efind_env.cluster,
                efind_env.dfs,
                lambda name: efind_env.make_job(name),
                modes=("Base", "Dynamic"),
                label="ht-on",
            )
        finally:
            set_trace_dir(None)
        assert set(row.trace_wall) == {"Base", "Dynamic"}
        for mode in ("Base", "Dynamic"):
            wall = row.trace_wall[mode]
            assert wall["off"] > 0 and wall["on"] > 0
            assert wall["overhead"] == wall["on"] - wall["off"]
            paths = row.trace_paths[mode]
            assert set(paths) == {"trace", "audit", "metrics"}
            for path in paths.values():
                assert os.path.exists(path)
        with open(row.trace_paths["Dynamic"]["trace"], encoding="utf-8") as fh:
            payload = json.load(fh)
        assert validate_chrome_trace(payload) == []
        # the untraced run stays authoritative; the traced re-run used
        # the same job name, so its artifacts carry that name
        assert "ht-on-dynamic" in row.trace_paths["Dynamic"]["trace"]
