"""Tests for the Chrome-trace exporter, validator, and report tool."""

import json

from repro.obs import Observability
from repro.obs.export import (
    max_event_depth,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.report import (
    build_report,
    find_trace_files,
    load_trace,
    phase_critical_paths,
    replan_timeline,
    slowest_lookups,
)
from repro.obs.trace import (
    DEPTH_JOB,
    DEPTH_OP,
    DEPTH_PHASE,
    DEPTH_STAGE,
    DEPTH_TASK,
    DRIVER_TRACK,
    Tracer,
    slot_track,
)


def small_tracer() -> Tracer:
    """A hand-built two-track trace with one phase and two tasks."""
    t = Tracer()
    t.span("efind:j", "job", DRIVER_TRACK, 0.0, 3.0, DEPTH_JOB, job="j")
    t.span("j", "stage", DRIVER_TRACK, 0.0, 3.0, DEPTH_STAGE, job="j")
    t.span("j/map", "phase", DRIVER_TRACK, 0.5, 2.5, DEPTH_PHASE,
           kind="map", job="j")
    for i, (start, dur) in enumerate([(0.5, 1.0), (0.5, 2.0)]):
        t.span("task", "task", slot_track("node00", "map", i), start,
               start + dur, DEPTH_TASK, task=f"j-m{i}", kind="map", wave=0)
    t.span("lookup", "op", slot_track("node00", "map", 1), 1.0, 1.2,
           DEPTH_OP, op="head0", index=0)
    t.instant("slot.commit", "sched", slot_track("node00", "map", 0), 0.5,
              DEPTH_TASK, wave=0)
    return t


class TestChromeExport:
    def test_valid_and_deep_enough(self):
        payload = to_chrome_trace(small_tracer())
        assert validate_chrome_trace(payload) == []
        assert max_event_depth(payload) == DEPTH_OP

    def test_driver_is_first_process(self):
        payload = to_chrome_trace(small_tracer())
        name_by_pid = {
            ev["pid"]: ev["args"]["name"]
            for ev in payload["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert name_by_pid[1] == "driver"
        assert set(name_by_pid.values()) == {"driver", "node00"}

    def test_timestamps_are_simulated_microseconds(self):
        payload = to_chrome_trace(small_tracer())
        (lookup,) = [
            ev for ev in payload["traceEvents"] if ev.get("name") == "lookup"
        ]
        assert lookup["ts"] == 1.0 * 1e6
        assert lookup["dur"] == round(0.2 * 1e6, 3)
        assert payload["otherData"]["clock"] == "simulated"

    def test_instants_have_scope(self):
        payload = to_chrome_trace(small_tracer())
        (inst,) = [ev for ev in payload["traceEvents"] if ev["ph"] == "i"]
        assert inst["s"] == "t"
        assert isinstance(inst["args"]["depth"], int)


class TestValidator:
    def test_detects_negative_duration(self):
        payload = to_chrome_trace(small_tracer())
        for ev in payload["traceEvents"]:
            if ev["ph"] == "X":
                ev["dur"] = -1.0
                break
        assert any("bad dur" in p for p in validate_chrome_trace(payload))

    def test_detects_missing_depth(self):
        payload = to_chrome_trace(small_tracer())
        for ev in payload["traceEvents"]:
            if ev["ph"] == "X":
                del ev["args"]["depth"]
                break
        assert any("args.depth" in p for p in validate_chrome_trace(payload))

    def test_detects_unnamed_thread(self):
        payload = to_chrome_trace(small_tracer())
        payload["traceEvents"] = [
            ev
            for ev in payload["traceEvents"]
            if not (ev["ph"] == "M" and ev["name"] == "thread_name")
        ]
        assert any("thread_name" in p for p in validate_chrome_trace(payload))

    def test_empty_trace_is_a_problem(self):
        assert validate_chrome_trace({"traceEvents": []})
        assert validate_chrome_trace({})

    def test_unknown_phase_is_named_precisely(self):
        payload = to_chrome_trace(small_tracer())
        payload["traceEvents"][0]["ph"] = "Z"
        (problem,) = [
            p for p in validate_chrome_trace(payload) if "phase" in p
        ]
        assert "unsupported phase 'Z'" in problem
        # ...and tells the reader what would have been accepted.
        for known in ("X", "i", "M", "b", "e"):
            assert known in problem


ALERT_ROWS = [
    {
        "seq": 0, "rule": "wave-straggler", "severity": "warning",
        "metric": "straggler_ratio", "fired_at": 0.6, "cleared_at": 1.8,
        "state": "cleared", "peak": 3.0, "samples": 2,
        "evidence": [{"ts": 0.6, "value": 3.0}], "detail": {},
    },
    {
        "seq": 1, "rule": "retry-storm", "severity": "critical",
        "metric": "fault_retry_rate", "fired_at": 2.0, "cleared_at": None,
        "state": "open", "peak": 5.0, "samples": 4,
        "evidence": [{"ts": 2.0, "value": 5.0}], "detail": {},
    },
]


class TestAlertBands:
    """Live alert timelines export as async b/e band pairs the
    validator and report tooling must recognize."""

    def test_bands_validate_and_pair_up(self):
        payload = to_chrome_trace(small_tracer(), alerts=ALERT_ROWS)
        assert validate_chrome_trace(payload) == []
        bands = [
            ev for ev in payload["traceEvents"] if ev.get("cat") == "alert"
        ]
        assert [ev["ph"] for ev in bands] == ["b", "e", "b", "e"]
        begin = bands[0]
        assert begin["name"] == "wave-straggler"
        assert begin["ts"] == 0.6 * 1e6
        assert begin["args"]["severity"] == "warning"
        # An open alert's closing "e" sits at the trace end, but its
        # band still says so.
        assert bands[2]["args"]["state"] == "open"

    def test_unbalanced_pair_is_detected(self):
        payload = to_chrome_trace(small_tracer(), alerts=ALERT_ROWS)
        payload["traceEvents"] = [
            ev
            for ev in payload["traceEvents"]
            if not (ev.get("ph") == "e" and ev.get("cat") == "alert")
        ]
        problems = validate_chrome_trace(payload)
        assert any(
            "unmatched 'b'/'e'" in p and "wave-straggler" in p
            for p in problems
        )

    def test_alert_rows_recoverable_from_bands(self):
        from repro.obs.analysis.loader import extract_alerts

        payload = to_chrome_trace(small_tracer(), alerts=ALERT_ROWS)
        rows = extract_alerts(payload)
        assert [r["rule"] for r in rows] == ["wave-straggler", "retry-storm"]
        assert rows[0]["cleared_at"] == 1.8
        assert rows[1]["cleared_at"] is None  # open band stays open

    def test_report_joins_alerts(self, tmp_path):
        trace_path = str(tmp_path / "j.trace.json")
        write_chrome_trace(small_tracer(), trace_path, alerts=ALERT_ROWS)
        write_jsonl(ALERT_ROWS, str(tmp_path / "j.alerts.jsonl"))
        report = build_report(trace_path)
        assert "SLO alerts" in report
        assert "wave-straggler" in report
        assert "[ALERT" in report  # critical-path lines annotated


class TestReport:
    def test_round_trip_and_sections(self, tmp_path):
        trace_path = str(tmp_path / "j.trace.json")
        write_chrome_trace(small_tracer(), trace_path)
        write_jsonl(
            [
                {
                    "seq": 0, "job": "j", "phase": "map", "sim_time": 1.5,
                    "verdict": "replan", "improvement": 0.8, "applied": True,
                    "current_plan": "p0", "new_plan": "p1",
                    "reuse": {"cutover": "mid-map"},
                }
            ],
            str(tmp_path / "j.audit.jsonl"),
        )
        assert find_trace_files(str(tmp_path)) == [trace_path]
        report = build_report(trace_path)
        assert "per-phase critical path" in report
        # the critical chain is the slowest task of the only wave (2s)
        assert "critical chain 2.000s" in report
        assert "lookup 200.000ms" in report
        assert "replan" in report and "cutover=mid-map" in report

    def test_sections_degrade_gracefully(self):
        assert phase_critical_paths([]) == ["no phase spans in trace"]
        assert slowest_lookups([]) == [
            "no lookup spans in trace (detail may be capped or untraced)"
        ]
        assert replan_timeline([]) == ["no adaptive evaluations in audit log"]


class TestObservabilityExport:
    def test_export_writes_three_artifacts(self, tmp_path):
        obs = Observability()
        obs.tracer.span("efind:j", "job", DRIVER_TRACK, 0.0, 1.0, DEPTH_JOB)
        paths = obs.export(str(tmp_path), "j")
        assert set(paths) == {"trace", "audit", "metrics"}
        payload = load_trace(paths["trace"])
        assert validate_chrome_trace(payload) == []
        with open(paths["metrics"], encoding="utf-8") as fh:
            metrics = json.load(fh)
        assert set(metrics) == {"counters", "gauges", "histograms"}

    def test_live_export_adds_alerts_artifact(self, tmp_path):
        obs = Observability()
        obs.tracer.span("efind:j", "job", DRIVER_TRACK, 0.0, 1.0, DEPTH_JOB)
        paths = obs.export(str(tmp_path), "j", alerts=ALERT_ROWS)
        assert set(paths) == {"trace", "audit", "metrics", "alerts"}
        with open(paths["alerts"], encoding="utf-8") as fh:
            rows = [json.loads(line) for line in fh]
        assert rows == ALERT_ROWS
        payload = load_trace(paths["trace"])
        assert validate_chrome_trace(payload) == []
