"""Artifact-loading robustness: empty/partial trace directories must
produce actionable errors and non-zero exits, never tracebacks."""

import json

import pytest

from repro.obs.analysis.loader import (
    TraceArtifactError,
    load_artifacts,
    load_one,
)


def _write_valid_export(tmp_path, base="j"):
    from repro.obs import Observability
    from repro.obs.trace import DEPTH_JOB, DRIVER_TRACK

    obs = Observability()
    obs.tracer.span(
        f"efind:{base}", "job", DRIVER_TRACK, 0.0, 1.0, DEPTH_JOB, job=base
    )
    return obs.export(str(tmp_path), base)


class TestLoaderErrors:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(TraceArtifactError, match="no such file"):
            load_artifacts(str(tmp_path / "nope"))

    def test_empty_directory(self, tmp_path):
        with pytest.raises(TraceArtifactError, match="no \\*.trace.json"):
            load_artifacts(str(tmp_path))

    def test_empty_trace_file(self, tmp_path):
        p = tmp_path / "x.trace.json"
        p.write_text("")
        with pytest.raises(TraceArtifactError, match="empty"):
            load_artifacts(str(tmp_path))

    def test_truncated_trace_file(self, tmp_path):
        p = tmp_path / "x.trace.json"
        p.write_text('{"traceEvents": [{"ph": "X", ')
        with pytest.raises(TraceArtifactError, match="not valid JSON"):
            load_one(str(p))

    def test_wrong_structure(self, tmp_path):
        p = tmp_path / "x.trace.json"
        p.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(TraceArtifactError, match="traceEvents"):
            load_one(str(p))

    def test_truncated_audit_line_has_line_number(self, tmp_path):
        paths = _write_valid_export(tmp_path)
        with open(paths["audit"], "a", encoding="utf-8") as fh:
            fh.write('{"seq": 1, "job"')
        with pytest.raises(TraceArtifactError, match=":1:"):
            load_one(paths["trace"])

    def test_missing_siblings_tolerated(self, tmp_path):
        import os

        paths = _write_valid_export(tmp_path)
        os.remove(paths["audit"])
        os.remove(paths["metrics"])
        (artifact,) = load_artifacts(str(tmp_path))
        assert artifact.audit_rows == []
        assert artifact.metrics == {}

    def test_valid_export_round_trips(self, tmp_path):
        _write_valid_export(tmp_path, base="jj")
        (artifact,) = load_artifacts(str(tmp_path))
        assert artifact.base == "jj"
        assert len(artifact.spans) == 1
        assert artifact.spans[0]["args"]["job"] == "jj"


class TestCliErrors:
    """Both CLIs exit non-zero with one-line reasons on bad input."""

    def test_obs_report_missing_dir(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        rc = main(["report", str(tmp_path / "nope")])
        assert rc == 2
        err = capsys.readouterr().err
        assert "no such file" in err
        assert "Traceback" not in err

    def test_obs_report_empty_dir(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        rc = main(["report", str(tmp_path)])
        assert rc == 2
        assert "no *.trace.json" in capsys.readouterr().err

    def test_obs_validate_empty_dir(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        rc = main(["validate", str(tmp_path)])
        assert rc == 2
        assert "no *.trace.json" in capsys.readouterr().err

    def test_obs_validate_folds_corrupt_file_into_verdict(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        _write_valid_export(tmp_path, base="ok")
        (tmp_path / "bad.trace.json").write_text("{turncated")
        rc = main(["validate", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "INVALID" in out
        assert "ok.trace.json: ok" in out.replace(str(tmp_path) + "/", "")

    def test_obs_report_partial_trace_fails_clearly(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        (tmp_path / "partial.trace.json").write_text('{"traceEvents": [')
        rc = main(["report", str(tmp_path)])
        assert rc == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_analysis_cli_missing_dir(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        for cmd in ("report", "critical-path", "stragglers", "drift"):
            rc = main([cmd, str(tmp_path / "nope")])
            assert rc == 2
            assert "no such file" in capsys.readouterr().err

    def test_analysis_regress_missing_baseline(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        rc = main(["regress", str(tmp_path / "a.json"), str(tmp_path / "b.json")])
        assert rc == 2
        assert "baseline file not found" in capsys.readouterr().err
