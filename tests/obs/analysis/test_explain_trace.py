"""EXPLAIN integration: ``explain(..., trace_dir=...)`` appends one-line
critical-path and drift summaries from the offline analysis layer."""

from repro.core.explain import explain
from repro.obs import Observability


class TestExplainTraceDir:
    def test_summary_lines_present(self, efind_env, tmp_path):
        obs = Observability()
        runner = efind_env.runner(obs=obs)
        job = efind_env.make_job("xp-job")
        runner.run(job, mode="dynamic")
        obs.export(str(tmp_path), "xp-job")

        text = explain(
            efind_env.make_job("xp-job"),
            runner=efind_env.runner(),
            trace_dir=str(tmp_path),
        )
        assert "trace analysis:" in text
        assert "critical path" in text
        assert "drift over" in text
        assert "max recompute error" in text

    def test_matches_bench_variant_names(self, efind_env, tmp_path):
        # bench exports use <name>-<mode>; a prefix match finds them
        obs = Observability()
        efind_env.runner(obs=obs).run(
            efind_env.make_job("xp2-dynamic"), mode="dynamic"
        )
        obs.export(str(tmp_path), "xp2-dynamic")
        text = explain(
            efind_env.make_job("xp2"),
            runner=efind_env.runner(),
            trace_dir=str(tmp_path),
        )
        assert "xp2-dynamic: critical path" in text

    def test_empty_trace_dir_degrades_gracefully(self, efind_env, tmp_path):
        text = explain(
            efind_env.make_job("xp-none"),
            runner=efind_env.runner(),
            trace_dir=str(tmp_path),
        )
        assert "trace analysis:" in text
        assert "unavailable" in text
        assert "Traceback" not in text

    def test_no_matching_job_reported(self, efind_env, tmp_path):
        obs = Observability()
        efind_env.runner(obs=obs).run(
            efind_env.make_job("other-job"), mode="dynamic"
        )
        obs.export(str(tmp_path), "other-job")
        text = explain(
            efind_env.make_job("xp-miss"),
            runner=efind_env.runner(),
            trace_dir=str(tmp_path),
        )
        assert "no traced jobs matching 'xp-miss'" in text

    def test_without_trace_dir_unchanged(self, efind_env):
        text = explain(
            efind_env.make_job("xp-plain"), runner=efind_env.runner()
        )
        assert "trace analysis:" not in text
