"""Straggler & skew profiling: distribution math, cause attribution,
and behavior on real traced runs."""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from repro.obs import Observability
from repro.obs.analysis import load_artifacts
from repro.obs.analysis.stragglers import (
    coefficient_of_variation,
    gini,
    phase_profiles,
    render,
)
from repro.obs.trace import DEPTH_OP, DEPTH_TASK, slot_track
from repro.simcluster.cluster import Cluster
from repro.simcluster.faults import FaultPlan


class TestDistributionMath:
    def test_gini_even(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_gini_concentrated(self):
        # one task holds everything: G = (n-1)/n
        assert gini([0.0, 0.0, 0.0, 12.0]) == pytest.approx(0.75)

    def test_gini_degenerate(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_cv(self):
        assert coefficient_of_variation([2.0, 2.0]) == 0.0
        assert coefficient_of_variation([1.0]) == 0.0
        assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)


def _task(stage, idx, kind, wave, track, start, dur, op_totals=None, name="task"):
    marker = "m" if kind == "map" else "r"
    return {
        "name": name, "cat": "task", "track": track, "start": start,
        "dur": dur, "depth": DEPTH_TASK,
        "args": {
            "task": f"{stage}-{marker}{idx:04d}", "kind": kind, "wave": wave,
            "op_totals": op_totals or {},
        },
    }


class TestCauseAttribution:
    def _wave(self, slow_totals, slow_dur=1.0):
        spans = [
            _task("j", i, "map", 0, slot_track(f"n{i}", "map", 0), 0.0, 0.2,
                  op_totals={"lookup": [10, 0.05], "dfs.read": [1, 0.01]})
            for i in range(4)
        ]
        spans.append(
            _task("j", 9, "map", 0, slot_track("n9", "map", 0), 0.0, slow_dur,
                  op_totals=slow_totals)
        )
        return spans

    def _one_straggler(self, spans):
        (profile,) = phase_profiles(spans)
        assert len(profile.stragglers) == 1
        return profile.stragglers[0]

    def test_fault_retries_win_outright(self):
        s = self._one_straggler(
            self._wave({"lookup": [10, 0.9], "lookup.retry": [7, 0.0]})
        )
        assert s.cause == "fault-retries"
        assert s.evidence["lookup.retry.count"][0] == 7

    def test_slow_lookups(self):
        s = self._one_straggler(
            self._wave({"lookup": [10, 0.9], "index.fetch": [10, 0.8],
                        "dfs.read": [1, 0.01]})
        )
        # peers have no index.fetch at all -> median 0 -> not a burst
        assert s.cause == "slow-lookups"

    def test_cache_miss_burst(self):
        spans = [
            _task("j", i, "map", 0, slot_track(f"n{i}", "map", 0), 0.0, 0.2,
                  op_totals={"lookup": [10, 0.05], "cache.probe": [10, 0.001],
                             "index.fetch": [4, 0.04]})
            for i in range(4)
        ]
        spans.append(
            _task("j", 9, "map", 0, slot_track("n9", "map", 0), 0.0, 1.0,
                  op_totals={"lookup": [10, 0.9], "cache.probe": [10, 0.001],
                             "index.fetch": [40, 0.85]})
        )
        s = self._one_straggler(spans)
        assert s.cause == "cache-miss-burst"
        assert s.evidence["index.fetch.count"] == (40.0, 4.0)
        assert s.evidence["cache.probe.count"] == (10.0, 10.0)

    def test_probe_free_task_never_a_cache_miss_burst(self):
        # Regression: a baseline-strategy task records index.fetch ops
        # but zero cache.probe ops (it has no cache to miss). Its excess
        # fetches are plain lookup volume and must attribute to
        # slow-lookups, not to a cache-miss burst.
        spans = [
            _task("j", i, "map", 0, slot_track(f"n{i}", "map", 0), 0.0, 0.2,
                  op_totals={"lookup": [10, 0.05], "index.fetch": [4, 0.04]})
            for i in range(4)
        ]
        spans.append(
            _task("j", 9, "map", 0, slot_track("n9", "map", 0), 0.0, 1.0,
                  op_totals={"lookup": [10, 0.9], "index.fetch": [40, 0.85]})
        )
        s = self._one_straggler(spans)
        assert s.cause == "slow-lookups"
        assert "cache.probe.count" not in s.evidence

    def test_input_skew(self):
        s = self._one_straggler(
            self._wave({"lookup": [10, 0.05], "dfs.read": [1, 0.9]})
        )
        assert s.cause == "input-skew"

    def test_slow_compute_residual(self):
        s = self._one_straggler(self._wave({"lookup": [10, 0.05]}))
        assert s.cause == "slow-compute"

    def test_partition_skew_on_reducers(self):
        spans = []
        for i in range(4):
            spans.append(
                _task("j", i, "reduce", 0, slot_track(f"n{i}", "reduce", 0),
                      0.0, 0.2, op_totals={"shuffle.fetch": [8, 0.05]})
            )
            spans.append({
                "name": "shuffle.fetch", "cat": "op",
                "track": slot_track(f"n{i}", "reduce", 0),
                "start": 0.0, "dur": 0.05, "depth": DEPTH_OP,
                "args": {"task": f"j-r{i:04d}", "bytes": 1000.0},
            })
        spans.append(
            _task("j", 9, "reduce", 0, slot_track("n9", "reduce", 0), 0.0, 1.0,
                  op_totals={"shuffle.fetch": [80, 0.9]})
        )
        spans.append({
            "name": "shuffle.fetch", "cat": "op",
            "track": slot_track("n9", "reduce", 0),
            "start": 0.0, "dur": 0.9, "depth": DEPTH_OP,
            "args": {"task": "j-r0009", "bytes": 9000.0},
        })
        (profile,) = phase_profiles(spans)
        (s,) = profile.stragglers
        assert s.cause == "partition-skew"
        assert s.evidence["input.bytes"] == (9000.0, 1000.0)
        assert profile.input_gini > 0.3

    def test_crashed_attempts_not_profiled_as_tasks(self):
        spans = self._wave({"lookup": [10, 0.05]})
        spans.append(
            _task("j", 5, "map", 0, slot_track("n5", "map", 0), 0.0, 5.0,
                  name="task.crash")
        )
        (profile,) = phase_profiles(spans)
        assert profile.tasks == 5  # the crash span is excluded


def _killed(stage, idx, kind, wave, track, projected, role="primary"):
    marker = "m" if kind == "map" else "r"
    return {
        "name": "task.killed", "cat": "task", "track": track, "start": 0.0,
        "dur": 0.3, "depth": DEPTH_TASK,
        "args": {
            "task": f"{stage}-{marker}{idx:04d}", "kind": kind, "wave": wave,
            "role": role, "projected_dur": projected,
        },
    }


class TestSpeculationMitigation:
    """A straggler whose primary was killed by a winning backup never
    materialises as a slow ``task`` span; its *projected* duration is
    judged instead and attributed to ``mitigated-by-speculation``."""

    def _wave(self, n=4, dur=0.2):
        return [
            _task("j", i, "map", 0, slot_track(f"n{i}", "map", 0), 0.0, dur,
                  op_totals={"lookup": [10, 0.05]})
            for i in range(n)
        ]

    def test_killed_primary_over_threshold_is_mitigated(self):
        spans = self._wave()
        spans.append(
            _killed("j", 9, "map", 0, slot_track("n9", "map", 0), 1.0)
        )
        (profile,) = phase_profiles(spans)
        (s,) = profile.stragglers
        assert s.cause == "mitigated-by-speculation"
        assert s.duration == 1.0  # the projected, not the killed stub
        assert s.slowdown == pytest.approx(1.0 / 0.2)
        assert s.evidence["projected.seconds"] == (1.0, 0.2)

    def test_killed_primary_below_threshold_not_flagged(self):
        spans = self._wave()
        spans.append(
            _killed("j", 9, "map", 0, slot_track("n9", "map", 0), 0.25)
        )
        (profile,) = phase_profiles(spans)
        assert profile.stragglers == []

    def test_killed_backup_spans_ignored(self):
        # A *lost* backup's kill span carries role="backup"; it is
        # scheduler bookkeeping, never a straggler.
        spans = self._wave()
        spans.append(
            _killed("j", 9, "map", 0, slot_track("n9", "map", 0), 5.0,
                    role="backup")
        )
        (profile,) = phase_profiles(spans)
        assert profile.stragglers == []

    def test_killed_primary_needs_completed_wave_peers(self):
        # With fewer than two completed peers there is no wave median to
        # judge the projection against.
        spans = self._wave(n=1)
        spans.append(
            _killed("j", 9, "map", 0, slot_track("n9", "map", 0), 5.0)
        )
        (profile,) = phase_profiles(spans)
        assert profile.stragglers == []


class _CityOp(IndexOperator):
    def pre_process(self, key, value, index_input):
        user, payload = value
        index_input.put(0, user)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        collector.collect(cities[0] if cities else "unknown", value)


def _slow_host_run(tmp_path, tag, speculation_factor):
    """Lookup-heavy job on a 12-node cluster with one x4-slow host;
    fresh environment per run so the runs are fully independent."""
    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=32 * 1024)
    rng = random.Random(13)
    records = [
        (i, (f"user{rng.randrange(400):04d}", "x" * 150)) for i in range(8000)
    ]
    dfs.write("/in/events", records)
    kv = DistributedKVStore("profiles", cluster, service_time=20e-3)
    for u in range(400):
        kv.put_unique(f"user{u:04d}", f"city{u % 25:02d}")
    job = IndexJobConf("st-spec")
    job.set_input_paths("/in/events").set_output_path("/out/st-spec")
    job.add_head_index_operator(_CityOp("city-op").add_index(IndexAccessor(kv)))
    job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
    job.set_reducer(
        FnReducer(lambda k, vs: [(k, len(vs))], "count"), num_reduce_tasks=8
    )
    obs = Observability()
    runner = EFindRunner(
        cluster,
        dfs,
        fault_plan=FaultPlan(seed=7, straggler_factors={"node05": 4.0}),
        speculation_factor=speculation_factor,
        obs=obs,
    )
    result = runner.run(job, mode="forced", forced_strategy=Strategy.CACHE)
    obs.export(str(tmp_path / tag), "st-spec")
    (artifact,) = load_artifacts(str(tmp_path / tag))
    return result, phase_profiles(artifact.spans)


class TestSpeculationDifferentialClassification:
    def test_slow_host_cause_flips_with_speculation(self, tmp_path):
        """The same seeded slow host reads ``slow-lookups`` with
        speculation off and ``mitigated-by-speculation`` with it on --
        same tasks flagged either way, so the tail is explained, not
        hidden."""
        off_result, off_profiles = _slow_host_run(tmp_path, "off", None)
        on_result, on_profiles = _slow_host_run(tmp_path, "on", 1.5)

        def map_stragglers(profiles):
            return {
                s.task: s
                for p in profiles
                if p.kind == "map"
                for s in p.stragglers
            }

        off_s = map_stragglers(off_profiles)
        on_s = map_stragglers(on_profiles)
        assert off_s, "the x4 host must produce map stragglers"
        assert set(on_s) == set(off_s)  # same tail tasks either way
        for s in off_s.values():
            assert s.cause != "mitigated-by-speculation"
        for s in on_s.values():
            assert s.cause == "mitigated-by-speculation"
            assert "projected.seconds" in s.evidence
        # And the mitigation is real: backups won and the clock moved.
        spec = on_result.counters.group("spec")
        assert spec.get("backups_won", 0) == len(on_s)
        assert on_result.sim_time < off_result.sim_time
        assert sorted(on_result.output) == sorted(off_result.output)


class TestRealRun:
    def test_profiles_cover_every_phase(self, efind_env, tmp_path):
        obs = Observability()
        efind_env.runner(obs=obs).run(
            efind_env.make_job("st-dyn"), mode="dynamic"
        )
        obs.export(str(tmp_path), "st-dyn")
        (artifact,) = load_artifacts(str(tmp_path))
        profiles = phase_profiles(artifact.spans)
        kinds = {(p.stage, p.kind) for p in profiles}
        assert any(k == "map" for _, k in kinds)
        assert any(k == "reduce" for _, k in kinds)
        for p in profiles:
            assert p.tasks == sum(w.tasks for w in p.waves)
            assert 0.0 <= p.input_gini < 1.0
        text = "\n".join(render(profiles))
        assert "wave 0" in text

    def test_deterministic(self, efind_env, tmp_path):
        results = []
        for i in range(2):
            obs = Observability()
            efind_env.runner(obs=obs).run(
                efind_env.make_job("st-det"), mode="dynamic"
            )
            obs.export(str(tmp_path / str(i)), "st-det")
            (artifact,) = load_artifacts(str(tmp_path / str(i)))
            results.append([p.to_dict() for p in phase_profiles(artifact.spans)])
        assert results[0] == results[1]
