"""The perf-regression gate.

Acceptance: ``regress`` exits non-zero when the Q3 Dynamic time is
inflated by 10%, and passes (exit 0) on an identical re-run.
"""

import copy
import json

import pytest

from repro.obs.analysis.loader import TraceArtifactError
from repro.obs.analysis.regress import (
    Tolerances,
    compare,
    compare_files,
    load_baseline,
    render,
)


def q3_doc():
    return {
        "schema_version": 1,
        "suite": "tpch",
        "time_unit": "simulated seconds",
        "experiments": {
            "fig11b": {
                "title": "TPC-H Q3",
                "rows": [
                    {
                        "label": "Q3",
                        "times": {
                            "Base": 2.73, "Cache": 1.17, "Dynamic": 2.38,
                            "Idxloc": 1.87, "Optimized": 1.24, "Repart": 1.84,
                        },
                    }
                ],
            }
        },
    }


def write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


class TestCompare:
    def test_identical_rerun_passes(self, tmp_path):
        old = write(tmp_path, "old.json", q3_doc())
        new = write(tmp_path, "new.json", q3_doc())
        report = compare_files(old, new)
        assert report.ok
        assert not report.failures
        assert all(d.status == "ok" for d in report.deltas)

    def test_injected_10pct_slowdown_on_q3_fails(self, tmp_path):
        doc = q3_doc()
        doc["experiments"]["fig11b"]["rows"][0]["times"]["Dynamic"] *= 1.10
        report = compare_files(
            write(tmp_path, "old.json", q3_doc()),
            write(tmp_path, "new.json", doc),
        )
        assert not report.ok
        (failure,) = report.failures
        assert failure.mode == "Dynamic"
        assert failure.status == "regression"
        assert failure.change == pytest.approx(0.10)

    def test_improvement_does_not_fail(self, tmp_path):
        doc = q3_doc()
        doc["experiments"]["fig11b"]["rows"][0]["times"]["Base"] *= 0.8
        report = compare_files(
            write(tmp_path, "old.json", q3_doc()),
            write(tmp_path, "new.json", doc),
        )
        assert report.ok
        (imp,) = report.improvements
        assert imp.mode == "Base"

    def test_missing_mode_fails_added_does_not(self):
        old, new = q3_doc(), q3_doc()
        del new["experiments"]["fig11b"]["rows"][0]["times"]["Idxloc"]
        new["experiments"]["fig11b"]["rows"][0]["times"]["Extra"] = 1.0
        report = compare(old, new, Tolerances())
        statuses = {(d.mode, d.status) for d in report.deltas}
        assert ("Idxloc", "missing") in statuses
        assert ("Extra", "added") in statuses
        assert not report.ok  # missing fails; added alone would not

    def test_missing_row_fails(self):
        old, new = q3_doc(), q3_doc()
        new["experiments"]["fig11b"]["rows"] = []
        report = compare(old, new, Tolerances())
        assert not report.ok
        assert report.failures[0].status == "missing"

    def test_counter_drift_fails(self):
        old, new = q3_doc(), q3_doc()
        old["experiments"]["fig11b"]["rows"][0]["faults"] = {
            "Base": {"lookups_retried": 10.0}
        }
        new["experiments"]["fig11b"]["rows"][0]["faults"] = {
            "Base": {"lookups_retried": 14.0}
        }
        report = compare(old, new, Tolerances())
        assert not report.ok
        (failure,) = report.failures
        assert failure.status == "counter-drift"
        assert failure.quantity == "faults.lookups_retried"

    def test_tolerance_absorbs_small_drift(self):
        old, new = q3_doc(), q3_doc()
        new["experiments"]["fig11b"]["rows"][0]["times"]["Base"] *= 1.04
        assert compare(old, new, Tolerances(rel_tol=0.05)).ok
        assert not compare(old, new, Tolerances(rel_tol=0.01)).ok

    def test_per_experiment_override(self):
        old, new = q3_doc(), q3_doc()
        new["experiments"]["fig11b"]["rows"][0]["times"]["Base"] *= 1.08
        tol = Tolerances(
            rel_tol=0.05, per_experiment={"fig11b": {"rel_tol": 0.10}}
        )
        assert compare(old, new, tol).ok
        assert not compare(old, new, Tolerances(rel_tol=0.05)).ok


class TestLoadAndCli:
    def test_schema_version_mismatch(self, tmp_path):
        doc = q3_doc()
        doc["schema_version"] = 99
        with pytest.raises(TraceArtifactError, match="schema_version"):
            load_baseline(write(tmp_path, "v99.json", doc))

    def test_not_a_baseline(self, tmp_path):
        with pytest.raises(TraceArtifactError, match="experiments"):
            load_baseline(write(tmp_path, "x.json", {"foo": 1}))

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = write(tmp_path, "old.json", q3_doc())
        slow = q3_doc()
        slow["experiments"]["fig11b"]["rows"][0]["times"]["Dynamic"] *= 1.10
        new = write(tmp_path, "new.json", slow)

        assert main(["regress", old, old]) == 0
        assert "OK" in capsys.readouterr().out
        assert main(["regress", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "Dynamic" in out

    def test_cli_tolerance_config(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = write(tmp_path, "old.json", q3_doc())
        slow = q3_doc()
        slow["experiments"]["fig11b"]["rows"][0]["times"]["Dynamic"] *= 1.10
        new = write(tmp_path, "new.json", slow)
        cfg = write(
            tmp_path, "tol.json",
            {"rel_tol": 0.05, "per_experiment": {"fig11b": {"rel_tol": 0.25}}},
        )
        assert main(["regress", old, new, "--tolerance-config", cfg]) == 0
        capsys.readouterr()
        assert main(["regress", old, new, "--rel-tol", "0.25"]) == 0
        capsys.readouterr()
        assert (
            main(["regress", old, new, "--tolerance-config", cfg,
                  "--rel-tol", "0.2"])
            == 2
        )

    def test_cli_json_output(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = write(tmp_path, "old.json", q3_doc())
        assert main(["regress", old, old, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["failures"] == []

    def test_render_summarizes(self):
        report = compare(q3_doc(), q3_doc(), Tolerances())
        lines = render(report)
        assert lines[-1].startswith("OK")


class TestRenderMagnitudes:
    """No-percentage rows (old absent or zero => ``Delta.change`` is
    None) must still show the values -- a vanished row's times, an
    added mode's time, a counter that moved off zero."""

    def test_missing_row_renders_its_times(self):
        old, new = q3_doc(), q3_doc()
        new["experiments"]["fig11b"]["rows"] = []
        report = compare(old, new, Tolerances())
        text = "\n".join(render(report))
        # Every vanished mode is listed with its old magnitude.
        assert "Base time: 2.73 -> absent" in text
        assert "Cache time: 1.17 -> absent" in text
        assert "None" not in text

    def test_added_mode_renders_new_value(self):
        old, new = q3_doc(), q3_doc()
        new["experiments"]["fig11b"]["rows"][0]["times"]["Extra"] = 1.5
        report = compare(old, new, Tolerances())
        text = "\n".join(render(report))
        assert "Extra time: absent -> 1.5" in text
        assert "None" not in text

    def test_added_row_renders_its_times(self):
        old, new = q3_doc(), q3_doc()
        new["experiments"]["fig11b"]["rows"].append(
            {"label": "Q9", "times": {"Base": 4.2}}
        )
        report = compare(old, new, Tolerances())
        assert report.ok  # added rows never fail the gate
        text = "\n".join(render(report))
        assert "Q9 / Base time: absent -> 4.2" in text

    def test_from_zero_counter_renders_magnitudes(self):
        old, new = q3_doc(), q3_doc()
        old["experiments"]["fig11b"]["rows"][0]["spec"] = {
            "Base": {"backups_launched": 0.0}
        }
        new["experiments"]["fig11b"]["rows"][0]["spec"] = {
            "Base": {"backups_launched": 5.0}
        }
        report = compare(old, new, Tolerances())
        (failure,) = report.failures
        assert failure.change is None  # no percentage from zero...
        text = "\n".join(render(report))
        assert "spec.backups_launched: 0 -> 5" in text  # ...values shown


class TestCommittedBaselines:
    """The baselines committed in this repo stay loadable and
    self-consistent (regenerating them is covered by CI, which runs
    the real benches and regresses against these files)."""

    @pytest.mark.parametrize("suite", ["tpch", "synthetic"])
    def test_committed_baseline_loads(self, suite):
        import os

        from repro.bench.baseline import SUITES, baseline_filename

        path = os.path.join(
            os.path.dirname(__file__), "..", "..", "..",
            baseline_filename(suite),
        )
        doc = load_baseline(path)
        assert doc["suite"] == suite
        assert set(doc["experiments"]) == {name for name, _, _ in SUITES[suite]}
        for experiment in doc["experiments"].values():
            for row in experiment["rows"]:
                assert row["times"], "row without times"

    def test_identity_compare_of_committed_files(self):
        import os

        root = os.path.join(os.path.dirname(__file__), "..", "..", "..")
        for name in ("BENCH_tpch.json", "BENCH_synthetic.json"):
            path = os.path.join(root, name)
            report = compare_files(path, path)
            assert report.ok and not report.failures
