"""Two-run differential analysis: exactness and attribution.

The two contract-level invariants (also pinned on real bench artifacts
by ``benchmarks/test_trace_diff.py``):

* ``diff(run, run)`` is exactly ``0.0`` at every hierarchy level;
* on any pair, contributors sum to the total sim-time delta to within
  1e-9, with unmatched spans as explicit added/removed contributors.

Plus the analysis layers on top: op-level attribution from
``op_totals``, audit verdict flips with the largest moved term named,
counter and alert-timeline deltas, and the three CLI surfaces.
"""

import json

import pytest

from repro.obs.analysis.diff import (
    diff_artifacts,
    diff_paths,
    diff_sets,
    render,
    render_artifact,
)
from repro.obs.analysis.loader import TraceArtifacts

from test_align import small_run, span  # noqa: E402  (shared fixtures)
from repro.obs.trace import DEPTH_TASK


def artifact(spans, base="x", **kwargs):
    return TraceArtifacts(
        base=base, trace_path="", payload={}, spans=spans, **kwargs
    )


def assert_exact(diff):
    assert abs(diff.total_delta - diff.attributed_delta) < 1e-9


class TestExactness:
    def test_self_diff_is_exact_zero_at_every_level(self):
        a = artifact(small_run(extra_stage=True))
        diff = diff_artifacts(a, a)
        assert diff.identical
        assert diff.total_delta == 0.0
        assert all(v == 0.0 for v in diff.max_abs_by_level().values())
        assert all(c.delta == 0.0 for c in diff.contributors)

    def test_attribution_sums_to_total_delta(self):
        old = artifact(small_run(task_durs=(0.5, 0.4)))
        new = artifact(_stretched_run(extra=0.2))
        diff = diff_artifacts(old, new)
        assert diff.total_delta == pytest.approx(0.2)
        assert_exact(diff)

    def test_slower_task_lands_on_compute(self):
        # Same op_totals, longer duration: the delta must land on the
        # binding task's compute remainder, not on an op.
        old = artifact(small_run())
        new_spans = _stretched_run(extra=0.2)
        for s in new_spans:
            if s["args"].get("task") == "j-m0000":
                s["args"]["op_totals"] = {"lookup": [10, 0.5 / 4]}
        diff = diff_artifacts(old, artifact(new_spans))
        compute = [c for c in diff.contributors if c.kind == "compute"]
        (c,) = [c for c in compute if c.delta != 0.0]
        assert c.task == "m0000"
        assert c.delta == pytest.approx(0.2)
        assert c.old_track == "node00/map0"

    def test_slower_lookup_lands_on_op(self):
        diff = diff_artifacts(
            artifact(small_run()),
            artifact(_stretched_run(extra=0.2, into_lookup=True)),
        )
        ops = [c for c in diff.contributors if c.level == "op" and c.delta]
        (c,) = ops
        assert c.op == "lookup"
        assert c.delta == pytest.approx(0.2)
        # ... and the compute remainder stays ~zero.
        compute = [c for c in diff.contributors if c.kind == "compute"]
        assert all(abs(c.delta) < 1e-9 for c in compute)
        assert_exact(diff)

    def test_ranked_covers_90_percent(self):
        diff = diff_artifacts(
            artifact(small_run()), artifact(_stretched_run(extra=0.2))
        )
        shown, covered = diff.ranked()
        assert covered >= 0.90
        # --top truncation is honored.
        top1, _ = diff.ranked(top=1)
        assert len(top1) == 1


class TestStructuralChanges:
    def test_off_frontier_added_task_is_explicit_zero_weight(self):
        # The extra task is shorter than the binding straggler, so it
        # never moves the clock -- reported, but at zero delta.
        old = artifact(small_run())
        new = artifact(small_run(task_durs=(0.5, 0.4, 0.3)))
        diff = diff_artifacts(old, new)
        added = [c for c in diff.contributors if c.kind == "added-offpath"]
        (c,) = added
        assert c.task == "m0002"
        assert c.delta == 0.0
        assert "off-frontier" in c.note
        assert not diff.identical  # structure changed even at zero delta
        assert_exact(diff)

    def test_removed_stage_is_explicit_contributor(self):
        old = artifact(small_run(extra_stage=True))
        new = artifact(small_run())
        diff = diff_artifacts(old, new)
        removed = [
            c for c in diff.contributors
            if c.kind == "removed" and c.level == "stage"
        ]
        (c,) = removed
        assert c.delta == pytest.approx(-0.2)
        assert_exact(diff)

    def test_speculative_backup_is_flagged(self):
        new_spans = small_run()
        # A backup winner on another host, plus the killed primary.
        new_spans.append(
            span(
                "task", DEPTH_TASK, "node07/map0", 0.15, 0.2,
                task="j-m0000", kind="map", wave=0, attempt=1,
                speculative=True, op_totals={},
            )
        )
        diff = diff_artifacts(artifact(small_run()), artifact(new_spans))
        spec = [c for c in diff.contributors if "speculative" in c.note]
        assert spec, "backup task must be called out as speculative"
        assert_exact(diff)


class TestSideChannels:
    def test_counter_deltas_join_across_job_rename(self):
        old = artifact(
            small_run("slow-off"),
            metrics={"gauges": {"job.slow-off.spec.backups_launched": 0.0},
                     "counters": {}},
        )
        new = artifact(
            small_run("slow-on"),
            metrics={"gauges": {"job.slow-on.spec.backups_launched": 3.0},
                     "counters": {"trace.lookup.count": 7.0}},
        )
        diff = diff_artifacts(old, new)
        by_name = {(c.group, c.name): c for c in diff.counters}
        c = by_name[("spec", "backups_launched")]
        assert (c.old, c.new) == (0.0, 3.0)
        assert c.job == "slow-off -> slow-on"
        assert by_name[("trace", "lookup.count")].old is None

    def test_audit_verdict_flip_names_largest_moved_term(self):
        def row(verdict, t_lookup):
            return {
                "seq": 1, "job": "j", "phase": "map", "verdict": verdict,
                "sim_time": 0.4, "new_plan": "cache",
                "env": {"t_seek": 0.01},
                "operators": [{
                    "operator": "op0",
                    "sizes": {"input_records": 100},
                    "samples": {"0": {"t_lookup": t_lookup}},
                    "strategies": {
                        "0": {"costs": {"base": 1.0, "cache": 2.0}}
                    },
                }],
            }

        note = {"seq": 0, "job": "j", "phase": "map", "verdict": "note"}
        old = artifact(small_run(), audit_rows=[note, row("keep", 0.01)])
        new = artifact(small_run(), audit_rows=[row("switch", 0.04)])
        diff = diff_artifacts(old, new)
        (flip,) = diff.audit.flips
        assert (flip.old_verdict, flip.new_verdict) == ("keep", "switch")
        assert flip.largest_moved_term.startswith("op0[0].t_lookup")
        assert flip.cost_tables["op0"]["0"]["base"] == (1.0, 1.0)
        assert not diff.audit.unmatched  # notes don't count as evals

    def test_unmatched_audit_evaluation_reported(self):
        row = {"seq": 1, "job": "j", "phase": "map", "verdict": "replan",
               "sim_time": 0.3}
        diff = diff_artifacts(
            artifact(small_run()), artifact(small_run(), audit_rows=[row])
        )
        ((side, job, phase, verdict, _t),) = diff.audit.unmatched
        assert (side, verdict) == ("added", "replan")

    def test_alert_timeline_delta(self):
        fired = {"seq": 0, "rule": "wave-straggler", "severity": "warn",
                 "fired_at": 0.1, "cleared_at": 0.4, "state": "cleared"}
        diff = diff_artifacts(
            artifact(small_run(), alert_rows=[fired]),
            artifact(small_run(), alert_rows=[]),
        )
        (a,) = diff.alerts
        assert a.rule == "wave-straggler"
        assert (a.fired_old, a.fired_new) == (1, 0)
        assert a.duration_old == pytest.approx(0.3)
        assert not diff.identical

    def test_phase_work_deltas_report_moved_bucket(self):
        diff = diff_artifacts(
            artifact(small_run()),
            artifact(_stretched_run(extra=0.2, into_lookup=True)),
        )
        (work,) = [
            p for p in diff.phase_work if any(p.deltas().values())
        ]
        assert work.deltas()["lookup"] == pytest.approx(0.2)


class TestSetsAndRender:
    def test_equal_leftovers_pair_positionally(self):
        olds = [artifact(small_run("a"), base="slow-off-cache")]
        news = [artifact(small_run("a"), base="slow-on-cache")]
        diff = diff_sets(olds, news)
        (pair,) = diff.artifacts
        assert (pair.base_old, pair.base_new) == (
            "slow-off-cache", "slow-on-cache"
        )
        assert not diff.added_bases and not diff.removed_bases

    def test_unequal_leftovers_flagged_not_guessed(self):
        olds = [artifact(small_run("a"), base="left")]
        news = [
            artifact(small_run("a"), base="right"),
            artifact(small_run("b"), base="extra"),
        ]
        diff = diff_sets(olds, news)
        assert diff.artifacts == []
        assert [b for b, _ in diff.added_bases] == ["extra", "right"]
        assert [b for b, _ in diff.removed_bases] == ["left"]
        assert not diff.identical

    def test_render_smoke(self):
        a = artifact(small_run())
        text = "\n".join(render(diff_sets([a], [a])))
        assert "IDENTICAL" in text
        changed = diff_artifacts(a, artifact(_stretched_run(extra=0.2)))
        text = "\n".join(render_artifact(changed))
        assert "top contributors" in text and "m0000" in text


def _stretched_run(extra=0.2, into_lookup=False):
    """``small_run`` with task m0000 slower by ``extra`` seconds --
    charged to its lookup op_totals when ``into_lookup``."""
    spans = small_run(task_durs=(0.5 + extra, 0.4))
    if into_lookup:
        for s in spans:
            if s["args"].get("task") == "j-m0000":
                # small_run charges dur/4 to lookup; keep the original
                # base charge and add the whole stretch to it.
                s["args"]["op_totals"] = {"lookup": [10, 0.5 / 4 + extra]}
    return spans


class TestCli:
    def _export(self, tmp_path, sub, dur_scale=1.0):
        from repro.obs import Observability
        from repro.obs.trace import DEPTH_JOB, DEPTH_STAGE, DRIVER_TRACK

        obs = Observability()
        obs.tracer.span(
            "efind:q", "job", DRIVER_TRACK, 0.0, 2.0 * dur_scale,
            DEPTH_JOB, job="q",
        )
        obs.tracer.span(
            "q", "stage", DRIVER_TRACK, 0.1, 1.8 * dur_scale,
            DEPTH_STAGE, job="q",
        )
        d = tmp_path / sub
        obs.export(str(d), "q")
        return str(d)

    def test_diff_cli_exit_codes_and_json(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        a = self._export(tmp_path, "a")
        b = self._export(tmp_path, "b", dur_scale=1.5)
        assert main(["diff", a, a]) == 0
        assert "IDENTICAL" in capsys.readouterr().out
        assert main(["diff", a, b, "--top", "3"]) == 1
        assert "DIFFERS" in capsys.readouterr().out
        assert main(["diff", a, b, "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["identical"] is False
        assert doc["total_delta"] == pytest.approx(1.0)
        (art,) = doc["artifacts"]
        assert art["attributed_delta"] == pytest.approx(art["total_delta"])

    def test_diff_cli_bad_path_exits_2(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        rc = main(["diff", str(tmp_path / "nope"), str(tmp_path / "nope")])
        assert rc == 2
        assert "no such file" in capsys.readouterr().err

    def _baseline(self, tmp_path, name, base_time):
        doc = {
            "schema_version": 1, "suite": "tpch",
            "time_unit": "simulated seconds",
            "experiments": {"fig11b": {"title": "Q3", "rows": [
                {"label": "Q3", "times": {"Base": base_time}}]}},
        }
        p = tmp_path / name
        p.write_text(json.dumps(doc))
        return str(p)

    def test_regress_trace_flags_append_root_cause(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = self._baseline(tmp_path, "old.json", 2.0)
        new = self._baseline(tmp_path, "new.json", 3.0)
        ta = self._export(tmp_path, "ta")
        tb = self._export(tmp_path, "tb", dur_scale=1.5)
        rc = main(["regress", old, new, "--trace-old", ta, "--trace-new", tb])
        assert rc == 1
        out = capsys.readouterr().out
        assert "root cause (trace diff old -> new)" in out
        assert "DIFFERS" in out

    def test_regress_trace_flags_quiet_when_gate_passes(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = self._baseline(tmp_path, "old.json", 2.0)
        ta = self._export(tmp_path, "ta")
        rc = main(["regress", old, old, "--trace-old", ta, "--trace-new", ta])
        assert rc == 0
        assert "root cause" not in capsys.readouterr().out

    def test_regress_trace_flags_must_come_together(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = self._baseline(tmp_path, "old.json", 2.0)
        rc = main(["regress", old, old, "--trace-old", str(tmp_path)])
        assert rc == 2
        assert "together" in capsys.readouterr().err

    def test_regress_json_embeds_trace_diff(self, tmp_path, capsys):
        from repro.obs.analysis.__main__ import main

        old = self._baseline(tmp_path, "old.json", 2.0)
        ta = self._export(tmp_path, "ta")
        rc = main(["regress", old, old, "--json",
                   "--trace-old", ta, "--trace-new", ta])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["trace_diff"]["identical"] is True
