"""Cost-model drift detection.

Acceptance: on an undisturbed run, re-pricing Equations 1-4 from each
audit record's own recorded inputs reproduces the recorded costs within
float tolerance (the audit log and the cost model agree); the term join
finds the sampled T_j close to the measured index.fetch durations; and
executed-equivalence flags a chosen plan measurably slower than the
cheapest forced variant.
"""

import pytest

from repro.obs import Observability
from repro.obs.analysis import load_artifacts
from repro.obs.analysis.drift import (
    ExecutedEquivalence,
    executed_equivalence,
    job_drift,
    recompute_record,
    render,
    split_row_mode,
)
from repro.obs.analysis.loader import TraceArtifacts


@pytest.fixture()
def dyn_artifact(efind_env, tmp_path):
    obs = Observability()
    efind_env.runner(obs=obs).run(efind_env.make_job("drift-dyn"), mode="dynamic")
    obs.export(str(tmp_path), "drift-dyn")
    (artifact,) = load_artifacts(str(tmp_path))
    return artifact


class TestRecompute:
    def test_audit_records_carry_pricing_inputs(self, dyn_artifact):
        rows = [r for r in dyn_artifact.audit_rows if r.get("operators")]
        assert rows, "dynamic run produced no priced evaluations"
        for row in rows:
            assert row["env"], "CostEnv constants missing from audit record"
            for detail in row["operators"]:
                assert "sizes" in detail
                for sample in detail["samples"].values():
                    assert "c_req" in sample and "c_key" in sample

    def test_undisturbed_run_reprices_exactly(self, dyn_artifact):
        (drift,) = job_drift(dyn_artifact)
        assert drift.job == "drift-dyn"
        assert drift.recomputed, "nothing recomputed"
        # identical inputs through identical equations: float-tolerance
        # agreement, not just "close"
        assert drift.recompute_max_abs_error == pytest.approx(0.0, abs=1e-9)
        strategies = {r.strategy for r in drift.recomputed}
        assert strategies == {"base", "cache", "repart", "idxloc", "partial"}

    def test_tampered_record_shows_error(self, dyn_artifact):
        row = next(r for r in dyn_artifact.audit_rows if r.get("operators"))
        import copy

        tampered = copy.deepcopy(row)
        detail = tampered["operators"][0]
        for sample in detail["samples"].values():
            sample["tj"] = sample["tj"] * 2.0 + 1.0
        recomputed, _skipped = recompute_record(tampered)
        assert max(r.abs_error for r in recomputed) > 0.1

    def test_record_without_env_is_skipped_with_reason(self, dyn_artifact):
        row = next(r for r in dyn_artifact.audit_rows if r.get("operators"))
        import copy

        legacy = copy.deepcopy(row)
        legacy["env"] = {}
        recomputed, skipped = recompute_record(legacy)
        assert recomputed == []
        assert any("no CostEnv" in s for s in skipped)


class TestTermJoin:
    def test_sampled_tj_matches_measured_fetches(self, dyn_artifact):
        (drift,) = job_drift(dyn_artifact)
        tj_terms = [
            t for t in drift.terms if t.term == "tj" and t.measured is not None
        ]
        assert tj_terms, "no measurable T_j terms"
        for t in tj_terms:
            # the sample came from these very lookups; generous bound
            # only guards against unit mixups (ms vs s, per-batch vs
            # per-key)
            assert t.rel_error < 0.5

    def test_sample_evolution_tracks_first_and_last(self, dyn_artifact):
        (drift,) = job_drift(dyn_artifact)
        if len([r for r in dyn_artifact.audit_rows if r.get("operators")]) >= 2:
            assert drift.evolution
        for first, last in drift.evolution.values():
            assert isinstance(first, float) and isinstance(last, float)

    def test_render_is_printable(self, dyn_artifact):
        lines = render(job_drift(dyn_artifact))
        assert any("recomputed" in line for line in lines)


def _stub(base: str, duration: float) -> TraceArtifacts:
    return TraceArtifacts(
        base=base,
        trace_path=f"/x/{base}.trace.json",
        payload={},
        spans=[
            {
                "name": f"efind:{base}", "cat": "job", "track": "driver",
                "start": 0.0, "dur": duration, "depth": 0,
                "args": {"job": base, "depth": 0},
            }
        ],
    )


class TestExecutedEquivalence:
    def test_split_row_mode(self):
        assert split_row_mode("Q3-dynamic") == ("Q3", "dynamic")
        assert split_row_mode("+1ms-base") == ("+1ms", "base")
        assert split_row_mode("B=8-idxloc") == ("B=8", "idxloc")
        assert split_row_mode("unrelated") is None
        assert split_row_mode("-base") is None

    def test_flags_chosen_plan_slower_than_forced(self):
        artifacts = [
            _stub("Q-base", 10.0),
            _stub("Q-cache", 4.0),
            _stub("Q-dynamic", 5.0),
            _stub("Q-optimized", 4.01),
        ]
        results = {e.chosen_mode: e for e in executed_equivalence(artifacts)}
        assert results["dynamic"].flagged
        assert results["dynamic"].cheapest_mode == "cache"
        assert results["dynamic"].excess == pytest.approx(0.25)
        # within the 2% margin: not flagged
        assert not results["optimized"].flagged

    def test_rows_without_forced_variants_are_skipped(self):
        assert executed_equivalence([_stub("Q-dynamic", 5.0)]) == []

    def test_optimized_trace_prefers_named_job_over_profile(self):
        artifact = _stub("Q-optimized", 4.0)
        artifact.spans.append(
            {
                "name": "efind:Q-profile", "cat": "job", "track": "driver",
                "start": 0.0, "dur": 9.0, "depth": 0,
                "args": {"job": "Q-profile", "depth": 0},
            }
        )
        artifacts = [artifact, _stub("Q-base", 8.0)]
        (e,) = [
            x for x in executed_equivalence(artifacts)
            if x.chosen_mode == "optimized"
        ]
        # measured 4.0 (the optimized job), not 9.0 (the profiling job)
        assert e.times["optimized"] == pytest.approx(4.0)
        assert not e.flagged

    def test_to_dict_shape(self):
        e = ExecutedEquivalence(
            row="Q", times={"base": 2.0, "dynamic": 1.0},
            chosen_mode="dynamic", cheapest_mode="base",
            flagged=False, excess=-0.5,
        )
        d = e.to_dict()
        assert d["row"] == "Q" and d["excess"] == -0.5
