"""Alert-source precedence in the artifact loader.

``load_one`` prefers a sibling ``<base>.alerts.jsonl`` over alert
bands embedded in the Chrome trace; the embedded bands are only a
fallback for traces downloaded without their siblings. The sharp edge:
an *empty but present* sibling means "this live run fired nothing" and
must NOT fall back to the embedded bands (which would resurrect the
very alerts the file says did not survive export filtering).
"""

import os

from repro.obs import Observability
from repro.obs.analysis.loader import load_artifacts
from repro.obs.trace import DEPTH_JOB, DRIVER_TRACK


ALERT = {
    "seq": 0, "rule": "wave-straggler", "severity": "warning",
    "metric": "wave.p99", "fired_at": 0.1, "cleared_at": 0.4,
    "state": "cleared", "peak": 2.5,
}


def export(tmp_path, alerts):
    obs = Observability()
    obs.tracer.span(
        "efind:j", "job", DRIVER_TRACK, 0.0, 1.0, DEPTH_JOB, job="j"
    )
    return obs.export(str(tmp_path), "j", alerts=alerts)


class TestAlertPrecedence:
    def test_sibling_present_wins_over_embedded_bands(self, tmp_path):
        paths = export(tmp_path, alerts=[ALERT])
        # Rewrite the sibling with a different rule name; the embedded
        # trace bands still carry "wave-straggler".
        edited = dict(ALERT, rule="edited-rule")
        with open(paths["alerts"], "w", encoding="utf-8") as fh:
            fh.write(__import__("json").dumps(edited) + "\n")
        (artifact,) = load_artifacts(str(tmp_path))
        assert [r["rule"] for r in artifact.alert_rows] == ["edited-rule"]

    def test_sibling_absent_falls_back_to_embedded_bands(self, tmp_path):
        paths = export(tmp_path, alerts=[ALERT])
        os.remove(paths["alerts"])
        (artifact,) = load_artifacts(str(tmp_path))
        (row,) = artifact.alert_rows
        assert row["rule"] == "wave-straggler"
        assert row["fired_at"] == 0.1
        assert row["cleared_at"] == 0.4

    def test_both_absent_yields_no_alerts(self, tmp_path):
        export(tmp_path, alerts=None)
        (artifact,) = load_artifacts(str(tmp_path))
        assert artifact.alert_rows == []

    def test_empty_but_present_sibling_does_not_fall_back(self, tmp_path):
        paths = export(tmp_path, alerts=[ALERT])
        # Truncate the sibling: "live run, nothing fired". The trace
        # still embeds a band -- it must stay ignored.
        open(paths["alerts"], "w", encoding="utf-8").close()
        (artifact,) = load_artifacts(str(tmp_path))
        assert artifact.alert_rows == []
