"""Critical-path invariants.

The core guarantee: the per-job critical path *tiles* the job span --
segments are contiguous (each starts where the previous ended), stay
inside the job interval, and their durations sum to the job's simulated
duration exactly (modulo the export's microsecond rounding). Checked on
real EFind runs (including a replanned dynamic run, whose duplicate
stage names are the hard case) and property-style on randomized
synthetic trace trees over seeded workload shapes.
"""

import random

import pytest

from repro.obs import Observability
from repro.obs.analysis import load_artifacts
from repro.obs.analysis.critical_path import critical_paths, render
from repro.obs.export import to_chrome_trace
from repro.obs.trace import (
    DEPTH_JOB,
    DEPTH_PHASE,
    DEPTH_STAGE,
    DEPTH_TASK,
    DRIVER_TRACK,
    Tracer,
    slot_track,
)

#: Export rounds microseconds to 3 decimals => ~1e-9 s granularity;
#: segment sums accumulate it across O(100) segments.
TOL = 1e-6


def assert_tiles(path):
    assert path.segments, "empty critical path"
    assert path.segments[0].start == pytest.approx(path.start, abs=TOL)
    assert path.segments[-1].end == pytest.approx(path.end, abs=TOL)
    for prev, cur in zip(path.segments, path.segments[1:]):
        assert cur.start == pytest.approx(prev.end, abs=TOL), (
            f"gap/overlap between {prev.kind} and {cur.kind}"
        )
    assert path.accounted == pytest.approx(path.duration, abs=TOL)


def traced_run(env, name, mode="dynamic", **kwargs):
    obs = Observability()
    result = env.runner(obs=obs).run(env.make_job(name), mode=mode, **kwargs)
    return obs, result


class TestRealRuns:
    def test_dynamic_run_accounts_100_percent(self, efind_env, tmp_path):
        obs, result = traced_run(efind_env, "cp-dyn")
        obs.export(str(tmp_path), "cp-dyn")
        (artifact,) = load_artifacts(str(tmp_path))
        paths = critical_paths(artifact.spans)
        assert len(paths) == 1
        (path,) = paths
        assert path.job == "cp-dyn"
        assert_tiles(path)
        assert path.duration == pytest.approx(result.sim_time, abs=TOL)

    def test_forced_run_accounts_100_percent(self, efind_env, tmp_path):
        from repro.core.costmodel import Strategy

        obs, result = traced_run(
            efind_env, "cp-forced", mode="forced",
            forced_strategy=Strategy.CACHE,
        )
        obs.export(str(tmp_path), "cp-forced")
        (artifact,) = load_artifacts(str(tmp_path))
        (path,) = critical_paths(artifact.spans)
        assert_tiles(path)
        assert path.duration == pytest.approx(result.sim_time, abs=TOL)

    def test_phase_attribution_buckets(self, efind_env, tmp_path):
        obs, _ = traced_run(efind_env, "cp-attr")
        obs.export(str(tmp_path), "cp-attr")
        (artifact,) = load_artifacts(str(tmp_path))
        (path,) = critical_paths(artifact.spans)
        attribution = path.attribution()
        allowed = {
            "io", "shuffle", "lookup", "compute", "task.crash", "slot.idle",
            "startup", "driver.gap", "driver.tail", "stage", "stage.tail",
            "phase.tail",
        }
        assert set(attribution) <= allowed
        # the 20ms-per-lookup workload must show lookup time on the path
        assert attribution.get("lookup", 0.0) > 0.0
        # and attribution seconds re-sum to the whole job
        assert sum(attribution.values()) == pytest.approx(
            path.duration, abs=TOL
        )

    def test_deterministic_across_reruns(self, efind_env, tmp_path):
        dicts = []
        for i in range(2):
            obs, _ = traced_run(efind_env, "cp-det")
            obs.export(str(tmp_path / str(i)), "cp-det")
            (artifact,) = load_artifacts(str(tmp_path / str(i)))
            (path,) = critical_paths(artifact.spans)
            dicts.append(path.to_dict())
        assert dicts[0] == dicts[1]

    def test_render_mentions_every_phase(self, efind_env, tmp_path):
        obs, _ = traced_run(efind_env, "cp-render")
        obs.export(str(tmp_path), "cp-render")
        (artifact,) = load_artifacts(str(tmp_path))
        (path,) = critical_paths(artifact.spans)
        text = "\n".join(render(path))
        assert "100.0%" in text
        for phase in path.phases:
            assert phase.kind in text


def synthetic_tracer(seed: int) -> Tracer:
    """A random-but-valid trace tree: jobs -> sequential stages ->
    map (+ optional reduce) phases -> slot-packed task waves. Mirrors
    the scheduler's invariants (tasks on one slot are back-to-back
    within their phase; phase end == last task end or later)."""
    rng = random.Random(seed)
    t = Tracer()
    cursor = 0.0
    for j in range(rng.randint(1, 3)):
        job = f"syn{j}"
        job_start = cursor + rng.random() * 0.2
        stage_cursor = job_start + 0.1  # driver gap / startup
        for s in range(rng.randint(1, 3)):
            stage_name = job if s == 0 else f"{job}/shuffle-x.{s}"
            stage_start = stage_cursor
            phase_cursor = stage_start + rng.random() * 0.05
            for kind in ("map", "reduce")[: rng.randint(1, 2)]:
                phase_start = phase_cursor
                slots = [
                    slot_track(f"node{n:02d}", kind, 0)
                    for n in range(rng.randint(1, 4))
                ]
                slot_end = {}
                task_index = 0
                for wave in range(rng.randint(1, 3)):
                    for track in slots:
                        if rng.random() < 0.2:
                            continue  # idle slot this wave
                        start = max(
                            slot_end.get(track, phase_start),
                            phase_start + rng.random() * 0.01,
                        )
                        dur = 0.02 + rng.random() * 0.2
                        marker = "m" if kind == "map" else "r"
                        t.span(
                            "task", "task", track, start, start + dur,
                            DEPTH_TASK,
                            task=f"{stage_name}-{marker}{task_index:04d}",
                            kind=kind, wave=wave,
                            op_totals={"lookup": [3, dur * rng.random() * 0.5]},
                        )
                        slot_end[track] = start + dur
                        task_index += 1
                phase_end = max(slot_end.values(), default=phase_start + 0.01)
                t.span(
                    kind, "phase", DRIVER_TRACK, phase_start, phase_end,
                    DEPTH_PHASE, kind=kind, job=stage_name, tasks=task_index,
                )
                phase_cursor = phase_end
            stage_end = phase_cursor + rng.random() * 0.02
            t.span(
                stage_name, "stage", DRIVER_TRACK, stage_start, stage_end,
                DEPTH_STAGE, job=stage_name,
            )
            stage_cursor = stage_end
        job_end = stage_cursor + rng.random() * 0.05
        t.span(
            f"efind:{job}", "job", DRIVER_TRACK, job_start, job_end,
            DEPTH_JOB, job=job,
        )
        cursor = job_end
    return t


class TestSyntheticProperty:
    """Tiling holds for every randomized workload shape."""

    @pytest.mark.parametrize("seed", range(12))
    def test_tiles_for_random_trees(self, seed, tmp_path):
        from repro.obs.analysis.loader import extract_spans

        tracer = synthetic_tracer(seed)
        payload = to_chrome_trace(tracer)
        spans, _ = extract_spans(payload)
        paths = critical_paths(spans)
        assert paths
        for path in paths:
            assert_tiles(path)

    @pytest.mark.parametrize("seed", range(4))
    def test_deterministic_per_seed(self, seed):
        from repro.obs.analysis.loader import extract_spans

        results = []
        for _ in range(2):
            payload = to_chrome_trace(synthetic_tracer(seed))
            spans, _ = extract_spans(payload)
            results.append([p.to_dict() for p in critical_paths(spans)])
        assert results[0] == results[1]
