"""Structural alignment: identity is names and indices, never time.

Alignment drives the trace diff, so the load-bearing properties are
(a) the identity keys match ISSUE-stable facts about the exporter
(job/stage/phase names, wave and task indices, occurrence ranks for
replans), (b) job-level rename tolerance pairs bench variants whose
labels differ, and (c) the whole thing is independent of span order.
"""

import random

from repro.obs.analysis.align import (
    align_forests,
    build_forest,
    job_name_map,
    stage_suffix,
)
from repro.obs.trace import (
    DEPTH_JOB,
    DEPTH_PHASE,
    DEPTH_STAGE,
    DEPTH_TASK,
    DEPTH_WAVE,
    DRIVER_TRACK,
    WAVE_TRACK,
)


def span(name, depth, track, start, dur, **args):
    return {
        "name": name, "depth": depth, "track": track,
        "start": start, "dur": dur, "args": args,
    }


def small_run(job="j", task_durs=(0.5, 0.4), extra_stage=False):
    """One job, its main stage, a map phase, one wave of tasks -- the
    exporter's span schema in miniature."""
    spans = []
    wave_end = 0.1 + max(task_durs)
    for i, dur in enumerate(task_durs):
        spans.append(
            span(
                "task", DEPTH_TASK, f"node{i:02d}/map0", 0.1, dur,
                task=f"{job}-m{i:04d}", kind="map", wave=0, attempt=0,
                op_totals={"lookup": [10, dur / 4]},
            )
        )
    spans.append(
        span(
            "map.wave0", DEPTH_WAVE, WAVE_TRACK, 0.1, wave_end - 0.1,
            wave=0, kind="map", job=job,
        )
    )
    spans.append(
        span("map", DEPTH_PHASE, DRIVER_TRACK, 0.05, wave_end - 0.04,
             kind="map", job=job)
    )
    spans.append(
        span(job, DEPTH_STAGE, DRIVER_TRACK, 0.02, wave_end + 0.0,
             job=job)
    )
    if extra_stage:
        # An extra-job stage (shuffle head build) after the main stage.
        spans.append(
            span(f"{job}/shuffle-head0", DEPTH_STAGE, DRIVER_TRACK,
                 wave_end + 0.05, 0.2, job=f"{job}/shuffle-head0")
        )
    end = wave_end + (0.3 if extra_stage else 0.05)
    spans.append(
        span(f"efind:{job}", DEPTH_JOB, DRIVER_TRACK, 0.0, end, job=job)
    )
    return spans


class TestForest:
    def test_hierarchy_shape_and_idents(self):
        (jb,) = build_forest(small_run())
        assert jb.level == "job" and jb.ident == ("j", 0)
        (stage,) = jb.children
        assert stage.ident == ("", 0)  # main stage
        (phase,) = stage.children
        assert phase.ident == ("map", 0)
        (wave,) = phase.children
        assert wave.ident == (0,)
        assert [t.ident for t in wave.children] == [
            ("m0000", "task", 0), ("m0001", "task", 0),
        ]

    def test_extra_job_stage_gets_suffix_ident(self):
        (jb,) = build_forest(small_run(extra_stage=True))
        assert [s.ident[0] for s in jb.children] == ["", "/shuffle-head0"]

    def test_stage_suffix(self):
        assert stage_suffix("q3", "q3") == ""
        assert stage_suffix("q3/shuffle-head0.0", "q3") == "/shuffle-head0.0"
        assert stage_suffix("other", "q3") == "other"

    def test_replanned_stage_occurrence_ranks(self):
        spans = small_run()
        # A dynamic replan re-runs the main stage under the same name.
        spans.append(span("j", DEPTH_STAGE, DRIVER_TRACK, 1.0, 0.3, job="j"))
        for s in spans:
            if s["depth"] == DEPTH_JOB:
                s["dur"] = 1.5
        (jb,) = build_forest(spans)
        assert [s.ident for s in jb.children] == [("", 0), ("", 1)]

    def test_order_independent(self):
        spans = small_run(extra_stage=True)
        shuffled = list(spans)
        random.Random(5).shuffle(shuffled)

        def shape(nodes):
            return [
                (n.level, n.ident, n.label, n.start, n.end, shape(n.children))
                for n in nodes
            ]

        assert shape(build_forest(spans)) == shape(build_forest(shuffled))


class TestAlign:
    def test_identical_runs_fully_matched(self):
        spans = small_run()
        aligned = align_forests(spans, spans)
        statuses = {
            (n.level, n.status)
            for top in aligned
            for n in _walk(top)
        }
        assert statuses == {
            ("job", "matched"), ("stage", "matched"),
            ("phase", "matched"), ("wave", "matched"),
            ("task", "matched"),
        }

    def test_job_rename_pairs_and_maps(self):
        aligned = align_forests(small_run("slow-off"), small_run("slow-on"))
        (jb,) = aligned
        assert jb.status == "matched"
        assert jb.label == "slow-off -> slow-on"
        assert job_name_map(aligned) == {"slow-off": "slow-on"}
        # Below the job, normalized idents line up despite the rename.
        (stage,) = jb.children
        (phase,) = stage.children
        (wave,) = phase.children
        assert all(t.status == "matched" for t in wave.children)

    def test_added_task_detected(self):
        old = small_run()
        new = small_run(task_durs=(0.5, 0.4, 0.3))
        (jb,) = align_forests(old, new)
        (wave,) = jb.children[0].children[0].children
        by_status = {}
        for t in wave.children:
            by_status.setdefault(t.status, []).append(t.ident[0])
        assert by_status == {"matched": ["m0000", "m0001"], "added": ["m0002"]}

    def test_removed_subtree_is_one_sided_all_the_way_down(self):
        (jb,) = align_forests(small_run(extra_stage=True), small_run())
        removed = [s for s in jb.children if s.status == "removed"]
        assert [s.ident[0] for s in removed] == ["/shuffle-head0"]


def _walk(node):
    yield node
    for child in node.children:
        yield from _walk(child)
