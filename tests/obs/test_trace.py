"""Unit tests for the simulated-time tracer and per-task buffers."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    DEPTH_DETAIL,
    DEPTH_JOB,
    DEPTH_OP,
    DEPTH_PHASE,
    DEPTH_STAGE,
    DEPTH_TASK,
    DEPTH_WAVE,
    DRIVER_TRACK,
    NULL_TRACER,
    NullTracer,
    TaskTraceBuffer,
    Tracer,
    slot_track,
)


class TestTracerBasics:
    def test_depth_constants_are_ordered(self):
        depths = [
            DEPTH_JOB,
            DEPTH_STAGE,
            DEPTH_PHASE,
            DEPTH_WAVE,
            DEPTH_TASK,
            DEPTH_OP,
            DEPTH_DETAIL,
        ]
        assert depths == sorted(depths) == list(range(7))

    def test_slot_track_naming(self):
        assert slot_track("node03", "map", 1) == "node03/map1"
        assert slot_track("node03", "reduce", 0) == "node03/reduce0"

    def test_span_and_instant_recording(self):
        t = Tracer()
        t.span("job", "job", DRIVER_TRACK, 0.0, 2.0, DEPTH_JOB, job="j")
        t.instant("mark", "sched", "node00/map0", 1.0, DEPTH_TASK)
        assert len(t) == 2
        assert t.max_depth() == DEPTH_TASK
        (span,) = t.spans_named("job")
        assert span.duration == 2.0
        assert t.spans_in_cat("job") == [span]

    def test_empty_tracer_depth(self):
        assert Tracer().max_depth() == -1


class TestTaskTraceBuffer:
    def test_rebase_onto_absolute_timeline(self):
        t = Tracer()
        buf = t.task_buffer("m0001")
        buf.rel_span("dfs.read", "io", 0.1, 0.4, DEPTH_OP)
        buf.rel_instant("mark", "io", 0.2, DEPTH_DETAIL)
        t.absorb_task(buf, task_start=10.0, track="node00/map0")
        (span,) = t.spans_named("dfs.read")
        assert (span.start, span.end) == (10.1, 10.4)
        assert span.track == "node00/map0"
        (inst,) = [i for i in t.instants if i.name == "mark"]
        assert inst.ts == 10.2

    def test_charged_coordinates_shift_by_base_offset(self):
        """Strategy/index layers record at ``ctx.charged_time``
        positions; ``base_offset`` moves them past the pre-chain costs
        (startup + read) so they land inside the task span."""
        t = Tracer()
        buf = t.task_buffer("m0002")
        buf.base_offset = 0.5
        buf.charged_span("lookup", "op", 0.0, 0.02, DEPTH_OP)
        buf.charged_instant("lookup.retry", "fault", 0.02, DEPTH_DETAIL)
        t.absorb_task(buf, task_start=100.0, track="node01/map1")
        (span,) = t.spans_named("lookup")
        assert (span.start, span.end) == (100.5, 100.52)
        (inst,) = [i for i in t.instants if i.name == "lookup.retry"]
        assert inst.ts == 100.52

    def test_detail_cap_drops_spans_but_keeps_totals(self):
        t = Tracer(max_task_detail=3)
        buf = t.task_buffer("m0003")
        for i in range(10):
            buf.charged_span("lookup", "op", i * 0.01, i * 0.01 + 0.005, DEPTH_OP)
        assert len(buf.rel_spans) == 3
        assert buf.dropped == 7
        count, total = buf.totals["lookup"]
        assert count == 10
        assert abs(total - 0.05) < 1e-12
        t.absorb_task(buf, 0.0, "node00/map0")
        assert t.dropped_detail == 7
        assert len(t.spans_named("lookup")) == 3

    def test_absorb_folds_totals_into_metrics(self):
        metrics = MetricsRegistry()
        t = Tracer(metrics=metrics)
        buf = t.task_buffer("m0004")
        buf.charged_span("lookup", "op", 0.0, 0.02, DEPTH_OP)
        buf.charged_span("lookup", "op", 0.02, 0.05, DEPTH_OP)
        buf.charged_span("cache.probe", "cache", 0.0, 0.001, DEPTH_DETAIL)
        t.absorb_task(buf, 0.0, "node00/map0")
        assert metrics.counter("trace.lookup.count").value == 2
        assert abs(metrics.counter("trace.lookup.seconds").value - 0.05) < 1e-12
        # lookup is histogram-worthy; cache.probe is counted only
        assert metrics.histogram("trace.lookup.latency_s").count == 2
        assert "trace.cache.probe.count" in metrics.to_dict()["counters"]

    def test_absorb_none_is_noop(self):
        t = Tracer()
        t.absorb_task(None, 0.0, "node00/map0")
        assert len(t) == 0


class TestNullTracer:
    def test_null_tracer_records_nothing(self):
        n = NullTracer()
        n.span("job", "job", DRIVER_TRACK, 0.0, 1.0, DEPTH_JOB)
        n.instant("x", "c", DRIVER_TRACK, 0.0, DEPTH_JOB)
        n.absorb_task(TaskTraceBuffer("t"), 0.0, "node00/map0")
        assert len(n) == 0
        assert not n.enabled

    def test_null_tracer_yields_no_task_buffer(self):
        # ctx.trace stays None -> every hot-path guard short-circuits
        assert NULL_TRACER.task_buffer("m0001") is None
