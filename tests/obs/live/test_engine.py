"""Tests for the SLO rule engine's alert state machine and the
alerts.jsonl / analysis-join helpers."""

import json

from repro.obs.live.engine import (
    MAX_EVIDENCE,
    SLOEngine,
    alert_labels,
    overlapping_alerts,
    summary_lines,
    write_alerts,
)
from repro.obs.live.rules import parse_rule


def threshold_rule(**overrides):
    base = {
        "name": "hot",
        "metric": "m",
        "severity": "warning",
        "predicate": {"type": "threshold", "op": ">=", "value": 2.0},
    }
    base.update(overrides)
    return parse_rule(base)


def feed(engine, samples, metric="m"):
    for ts, value in samples:
        engine.on_sample(metric, ts, value, {})


class TestThreshold:
    def test_fire_and_clear(self):
        engine = SLOEngine([threshold_rule()])
        feed(engine, [(0.0, 1.0), (1.0, 3.0), (2.0, 4.0), (3.0, 1.0)])
        (alert,) = engine.alerts
        assert alert.fired_at == 1.0
        assert alert.cleared_at == 3.0
        assert not alert.open
        assert alert.peak == 4.0
        assert alert.samples == 2

    def test_open_at_end_of_stream(self):
        engine = SLOEngine([threshold_rule()])
        feed(engine, [(0.0, 5.0)])
        engine.finish(9.0)
        (alert,) = engine.alerts
        assert alert.open
        assert alert.window(engine.end_of_stream) == (0.0, 9.0)
        assert alert.window() == (0.0, float("inf"))

    def test_refire_after_clear_is_a_new_alert(self):
        engine = SLOEngine([threshold_rule()])
        feed(engine, [(0.0, 3.0), (1.0, 0.0), (2.0, 3.0)])
        assert len(engine.alerts) == 2
        assert engine.alerts[0].cleared_at == 1.0
        assert engine.alerts[1].open

    def test_min_count_absorbs_blips(self):
        rule = threshold_rule(min_count=3)
        engine = SLOEngine([rule])
        feed(engine, [(0.0, 3.0), (1.0, 3.0), (2.0, 0.0), (3.0, 3.0)])
        assert engine.alerts == []  # the blip reset the streak
        feed(engine, [(4.0, 3.0), (5.0, 3.0)])
        (alert,) = engine.alerts
        assert alert.fired_at == 5.0

    def test_low_side_peak_is_a_min(self):
        rule = threshold_rule(
            predicate={"type": "threshold", "op": "<=", "value": 0.5}
        )
        engine = SLOEngine([rule])
        feed(engine, [(0.0, 0.4), (1.0, 0.1), (2.0, 0.3)])
        (alert,) = engine.alerts
        assert alert.peak == 0.1

    def test_evidence_capped_but_samples_exact(self):
        engine = SLOEngine([threshold_rule()])
        feed(engine, [(float(i), 3.0) for i in range(MAX_EVIDENCE + 5)])
        (alert,) = engine.alerts
        assert len(alert.evidence) == MAX_EVIDENCE
        assert alert.samples == MAX_EVIDENCE + 5


class TestSustained:
    def test_fires_only_after_hold_time(self):
        rule = threshold_rule(
            name="storm",
            predicate={"type": "sustained", "op": ">=", "value": 2.0,
                       "for": 1.0},
        )
        engine = SLOEngine([rule])
        feed(engine, [(0.0, 3.0), (0.5, 3.0)])
        assert engine.alerts == []  # held 0.5s < 1.0s
        feed(engine, [(1.0, 3.0)])
        (alert,) = engine.alerts
        assert alert.fired_at == 1.0

    def test_dip_resets_the_hold(self):
        rule = threshold_rule(
            predicate={"type": "sustained", "op": ">=", "value": 2.0,
                       "for": 1.0},
        )
        engine = SLOEngine([rule])
        feed(engine, [(0.0, 3.0), (0.9, 1.0), (1.0, 3.0), (1.5, 3.0)])
        assert engine.alerts == []
        feed(engine, [(2.0, 3.0)])
        assert len(engine.alerts) == 1


class TestRateOfChange:
    def test_slope_over_trailing_window(self):
        rule = threshold_rule(
            predicate={"type": "rate_of_change", "op": "<=", "value": -0.9,
                       "per": 1.0},
        )
        engine = SLOEngine([rule])
        # Flat then collapsing: slope (0.0 - 1.0) / (2.0 - 1.5) = -2.0.
        feed(engine, [(0.0, 1.0), (1.5, 1.0), (2.0, 0.0)])
        (alert,) = engine.alerts
        assert alert.fired_at == 2.0

    def test_single_sample_never_judges(self):
        rule = threshold_rule(
            predicate={"type": "rate_of_change", "op": ">=", "value": 0.0,
                       "per": 1.0},
        )
        engine = SLOEngine([rule])
        feed(engine, [(0.0, 1.0)])
        assert engine.alerts == []

    def test_old_samples_age_out_of_the_slope(self):
        rule = threshold_rule(
            predicate={"type": "rate_of_change", "op": "<=", "value": -0.9,
                       "per": 1.0},
        )
        engine = SLOEngine([rule])
        # The collapse happened long before the trailing window.
        feed(engine, [(0.0, 5.0), (5.0, 1.0), (5.5, 1.0), (6.0, 1.0)])
        assert engine.alerts == []


class TestRouting:
    def test_rules_only_see_their_metric(self):
        engine = SLOEngine([threshold_rule(metric="a")])
        feed(engine, [(0.0, 99.0)], metric="b")
        assert engine.alerts == []

    def test_aggregator_subscription(self):
        class FakeAgg:
            def __init__(self):
                self.listeners = []

            def on_sample(self, fn):
                self.listeners.append(fn)

        agg = FakeAgg()
        engine = SLOEngine([threshold_rule()], agg)
        assert agg.listeners == [engine.on_sample]


class TestRowsAndJoin:
    def _rows(self):
        engine = SLOEngine([threshold_rule()])
        feed(engine, [(1.0, 3.0), (2.0, 1.0), (5.0, 3.0)])
        engine.finish(6.0)
        return engine.alert_rows()

    def test_rows_are_json_ready_and_ordered(self, tmp_path):
        rows = self._rows()
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[0]["state"] == "cleared"
        assert rows[1]["state"] == "open"
        path = str(tmp_path / "alerts.jsonl")
        write_alerts(rows, path)
        with open(path, "r", encoding="utf-8") as fh:
            assert [json.loads(line) for line in fh] == rows

    def test_overlapping_alerts(self):
        rows = self._rows()
        # [1,2] cleared window; [5, inf) open window.
        assert [r["seq"] for r in overlapping_alerts(rows, 0.0, 0.5)] == []
        assert [r["seq"] for r in overlapping_alerts(rows, 1.5, 1.7)] == [0]
        assert [r["seq"] for r in overlapping_alerts(rows, 2.0, 3.0)] == [0]
        assert [r["seq"] for r in overlapping_alerts(rows, 9.0, 10.0)] == [1]
        assert [r["seq"] for r in overlapping_alerts(rows, 0.0, 10.0)] == [0, 1]

    def test_alert_labels_dedup(self):
        rows = self._rows()
        assert alert_labels(rows) == ["hot(warning)"]

    def test_summary_lines(self):
        assert summary_lines([]) == ["no alerts fired"]
        lines = summary_lines(self._rows())
        assert "t=1.000s..2.000s" in lines[0]
        assert "(open)" in lines[1]
