"""Tests for SLO rule parsing, validation errors, and the rule file."""

import json
import os

import pytest

from repro.obs.live.rules import (
    DEFAULT_RULES_JSON,
    RuleError,
    SloRule,
    coerce_rules,
    load_rules,
    parse_rule,
    parse_rules,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..", "..")


def _rule(**overrides):
    base = {
        "name": "r",
        "metric": "m",
        "severity": "warning",
        "predicate": {"type": "threshold", "op": ">=", "value": 1.0},
    }
    base.update(overrides)
    return base


class TestParseRule:
    def test_minimal_threshold(self):
        rule = parse_rule(_rule())
        assert rule.kind == "threshold"
        assert rule.min_count == 1
        assert rule.compare(1.0) and not rule.compare(0.5)

    def test_ops(self):
        for op, yes, no in ((">", 2.0, 1.0), (">=", 1.0, 0.9),
                            ("<", 0.5, 1.0), ("<=", 1.0, 1.1)):
            rule = parse_rule(
                _rule(predicate={"type": "threshold", "op": op, "value": 1.0})
            )
            assert rule.compare(yes) and not rule.compare(no)

    def test_sustained_needs_for(self):
        with pytest.raises(RuleError, match="positive 'for'"):
            parse_rule(
                _rule(predicate={"type": "sustained", "op": ">", "value": 1.0})
            )

    def test_rate_of_change_needs_per(self):
        with pytest.raises(RuleError, match="positive 'per'"):
            parse_rule(
                _rule(
                    predicate={
                        "type": "rate_of_change", "op": "<", "value": -1.0,
                    }
                )
            )

    def test_errors_name_the_rule_and_field(self):
        with pytest.raises(RuleError, match="rule 'r'.*severity 'loud'"):
            parse_rule(_rule(severity="loud"))
        with pytest.raises(RuleError, match="unknown predicate type 'spike'"):
            parse_rule(
                _rule(predicate={"type": "spike", "op": ">", "value": 1.0})
            )
        with pytest.raises(RuleError, match="unknown op '=='"):
            parse_rule(
                _rule(predicate={"type": "threshold", "op": "==", "value": 1})
            )
        with pytest.raises(RuleError, match="missing 'name'"):
            parse_rule({"metric": "m"})
        with pytest.raises(RuleError, match="must be a number"):
            parse_rule(
                _rule(predicate={"type": "threshold", "op": ">", "value": True})
            )
        with pytest.raises(RuleError, match="'min_count' must be an integer"):
            parse_rule(_rule(min_count=0))

    def test_duplicate_names_rejected(self):
        with pytest.raises(RuleError, match="duplicate rule name"):
            parse_rules([_rule(), _rule()])

    def test_not_a_list(self):
        with pytest.raises(RuleError, match="must be a JSON list"):
            parse_rules({"name": "r"})


class TestLoadRules:
    def test_none_and_empty_answer_defaults(self):
        defaults = load_rules(None)
        assert [r.name for r in defaults] == [
            "wave-straggler", "retry-storm", "cache-hit-collapse",
        ]
        assert [r.name for r in load_rules("")] == [r.name for r in defaults]

    def test_missing_file(self):
        with pytest.raises(RuleError, match="does not exist"):
            load_rules("/nonexistent/rules.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text("[{", encoding="utf-8")
        with pytest.raises(RuleError, match="not valid JSON"):
            load_rules(str(path))

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(DEFAULT_RULES_JSON), encoding="utf-8")
        assert load_rules(str(path)) == load_rules(None)


class TestCoerceRules:
    def test_accepts_all_shapes(self):
        defaults = load_rules(None)
        assert coerce_rules(None) == defaults
        assert coerce_rules(defaults) == defaults
        assert coerce_rules(DEFAULT_RULES_JSON) == defaults
        mixed = [defaults[0], DEFAULT_RULES_JSON[1]]
        assert coerce_rules(mixed) == defaults[:2]


class TestRuleFileSync:
    def test_benchmarks_slo_rules_mirror_the_builtin_set(self):
        """``benchmarks/slo_rules.json`` is the operator-facing template
        for the built-in rule set; the two must not drift."""
        path = os.path.join(REPO_ROOT, "benchmarks", "slo_rules.json")
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc == DEFAULT_RULES_JSON
        assert parse_rules(doc) == load_rules(None)


def test_to_dict_reparses_identically():
    for rule in load_rules(None):
        assert parse_rule(rule.to_dict()) == rule
        assert isinstance(rule, SloRule)
