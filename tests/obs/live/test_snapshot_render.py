"""Tests for the progress snapshot, the tick renderer, and replay
fidelity: a replayed export reproduces the live run's sample stream and
alert timeline exactly."""

import pytest

from repro.obs import Observability
from repro.obs.live import LiveSession
from repro.obs.live.bus import TelemetryBus
from repro.obs.live.render import render_replay
from repro.obs.live.replay import events_from_artifacts, replay, replay_ticks
from repro.obs.live.snapshot import LiveSnapshot


class TestSnapshot:
    def test_counts_and_determinism(self):
        session = LiveSession()
        bus = session.bus
        bus.publish_span("efind:j", "job", "driver", 0.0, 3.0, 0, {"job": "j"})
        bus.publish_span(
            "task", "task", "t0", 0.0, 1.0, 4,
            {"task": "j-m0000", "kind": "map", "wave": 0},
        )
        bus.publish_span("task.crash", "task", "t0", 0.0, 0.5, 4, {})
        bus.publish_span(
            "map.wave0", "wave", "waves", 0.0, 1.0, 3,
            {"kind": "map", "wave": 0, "job": "j"},
        )
        bus.publish_audit("replan", 0.9, job="j")
        snap = session.snapshot()
        assert snap["tasks_done"] == {"j/map": 1}
        assert snap["waves_done"] == 1
        assert snap["crashes"] == 1
        assert snap["jobs_seen"] == ["j"]
        assert snap["audit_verdicts"] == {"replan": 1}
        assert snap["alerts_fired"] == 0
        # Same events -> byte-identical snapshot.
        assert snap == session.snapshot()

    def test_render_line_shows_active_alert(self):
        session = LiveSession(
            rules=[{
                "name": "slow", "metric": "straggler_ratio",
                "severity": "warning",
                "predicate": {"type": "threshold", "op": ">=", "value": 1.5},
            }]
        )
        bus = session.bus
        for task, end in (("j-m0000", 0.5), ("j-m0001", 2.0)):
            bus.publish_span(
                "task", "task", "t0", 0.0, end, 4,
                {"task": task, "kind": "map", "wave": 0},
            )
        bus.publish_span(
            "map.wave0", "wave", "waves", 0.0, 2.0, 3,
            {"kind": "map", "wave": 0, "job": "j"},
        )
        line = session.progress.render_line()
        assert "ALERT slow" in line
        assert "straggler_ratio=" in line

    def test_standalone_snapshot_without_engine(self):
        bus = TelemetryBus()
        snap = LiveSnapshot(bus)
        bus.publish_instant("x", "sched", "t", 1.0, 4, {})
        assert snap.snapshot()["events"] == 1
        assert snap.snapshot()["metrics"] == {}


@pytest.fixture(scope="module")
def live_export(tmp_path_factory):
    """One live-traced run exported to disk, with its session."""
    from repro.bench.harness import bench_cluster
    from repro.core.runner import EFindRunner
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.workloads import tpch

    cluster = bench_cluster()
    dfs = DistributedFileSystem(cluster, block_size=12 * 1024)
    data = tpch.generate(tpch.TpchConfig(sf=0.002))
    tpch.write_lineitem(dfs, "/in/lineitem", data)
    indexes = tpch.build_indexes(cluster, data, service_time=6e-3)
    session = LiveSession()
    obs = Observability(bus=session.bus)
    runner = EFindRunner(cluster, dfs, obs=obs)
    runner.run(
        tpch.make_q3_job("q3-live", "/in/lineitem", "/out/q3-live", indexes),
        mode="dynamic",
    )
    session.finish()
    directory = str(tmp_path_factory.mktemp("live-export"))
    paths = obs.export(directory, "q3-live", alerts=session.alert_rows())
    return session, paths, directory


class TestReplayFidelity:
    def test_sample_stream_reproduced_exactly(self, live_export):
        session, paths, _dir = live_export
        from repro.obs.analysis.loader import load_one

        artifact = load_one(paths["trace"])
        fresh = LiveSession()
        replay(fresh, events_from_artifacts(artifact))
        assert fresh.aggregators.samples == session.aggregators.samples
        assert fresh.alert_rows() == session.alert_rows()
        assert fresh.aggregators.watermark == session.aggregators.watermark

    def test_replay_ticks_equals_one_shot(self, live_export):
        _session, paths, _dir = live_export
        from repro.obs.analysis.loader import load_one

        artifact = load_one(paths["trace"])
        events = events_from_artifacts(artifact)
        one_shot = LiveSession()
        replay(one_shot, events)
        ticked = LiveSession()
        frames = list(replay_ticks(ticked, events, ticks=7))
        assert len(frames) == 7
        assert ticked.aggregators.samples == one_shot.aggregators.samples
        assert ticked.alert_rows() == one_shot.alert_rows()

    def test_render_replay_reports_progress(self, live_export):
        _session, paths, _dir = live_export
        from repro.obs.analysis.loader import load_one

        artifact = load_one(paths["trace"])
        lines = render_replay(artifact, ticks=4)
        assert lines[0] == "=== q3-live ==="
        assert "SLO rule(s)" in lines[1]
        assert sum(1 for l in lines if l.startswith("t=")) == 4
        assert "--- alerts ---" in lines

    def test_cli_live_subcommand(self, live_export, capsys):
        from repro.obs.__main__ import main

        _session, _paths, directory = live_export
        assert main(["live", directory, "--ticks", "3"]) == 0
        out = capsys.readouterr().out
        assert "=== q3-live ===" in out
        assert "--- alerts ---" in out

    def test_cli_live_rejects_bad_rule_file(self, live_export, capsys):
        from repro.obs.__main__ import main

        _session, _paths, directory = live_export
        assert main(["live", directory, "--rules", "/nope.json"]) == 2
        assert "rule file does not exist" in capsys.readouterr().err

    def test_cli_live_rejects_missing_path(self, capsys):
        from repro.obs.__main__ import main

        assert main(["live", "/nonexistent-trace-dir"]) == 2
        assert "no such file" in capsys.readouterr().err
