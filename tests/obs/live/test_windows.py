"""Tests for the rolling windows and the live metric aggregators."""

import pytest

from repro.obs.live.bus import TelemetryBus
from repro.obs.live.windows import (
    DEFAULT_WINDOW_S,
    LiveAggregators,
    RollingWindow,
    _median,
)


class TestRollingWindow:
    def test_sum_count_mean_rate(self):
        w = RollingWindow(2.0)
        w.add(0.0, 1.0)
        w.add(1.0, 3.0)
        assert w.sum() == 4.0
        assert w.count() == 2
        assert w.mean() == 2.0
        assert w.rate() == 2.0
        assert len(w) == 2

    def test_prune_drops_at_or_before_horizon(self):
        w = RollingWindow(1.0)
        w.add(0.0, 1.0)
        w.add(1.0, 1.0)
        w.add(2.0, 1.0)
        w.prune(2.0)  # horizon 1.0: drops ts <= 1.0
        assert w.count() == 1
        assert w.sum() == 1.0

    def test_prune_handles_out_of_order_arrival(self):
        # Commit order is not time order: a later-added entry can be
        # older. The heap prunes by event time regardless.
        w = RollingWindow(1.0)
        w.add(5.0, 1.0)
        w.add(0.5, 1.0)
        w.add(4.5, 1.0)
        w.prune(5.0)  # horizon 4.0
        assert w.count() == 2
        assert w.sum() == 2.0

    def test_empty_window(self):
        w = RollingWindow(1.0)
        assert w.sum() == 0.0
        assert w.mean() == 0.0
        w.prune(100.0)
        assert w.count() == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            RollingWindow(0.0)


def test_median():
    assert _median([3.0]) == 3.0
    assert _median([1.0, 3.0]) == 2.0
    assert _median([5.0, 1.0, 3.0]) == 3.0


def _task_span(bus, task, kind, start, end, wave=0):
    bus.publish_span(
        "task", "task", f"node00 {kind} {task}", start, end, 4,
        {"task": task, "kind": kind, "wave": wave},
    )


def _wave_span(bus, job, kind, wave, start, end, tasks):
    bus.publish_span(
        f"{kind}.wave{wave}", "wave", "waves", start, end, 3,
        {"kind": kind, "wave": wave, "job": job, "tasks": tasks},
    )


class TestLiveAggregators:
    def test_throughput_sample_per_task(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        _task_span(bus, "j-m0000", "map", 0.0, 0.4)
        _task_span(bus, "j-m0001", "map", 0.0, 0.5)
        samples = [s for s in agg.samples if s[0] == "throughput.map"]
        assert len(samples) == 2
        # Two completions inside the 1s window -> 2 tasks/s.
        assert samples[-1][2] == 2.0
        assert agg.tasks_done[("j", "map")] == 2

    def test_throughput_window_expires(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus, window=1.0)
        _task_span(bus, "j-m0000", "map", 0.0, 0.1)
        _task_span(bus, "j-m0001", "map", 5.0, 5.1)
        assert agg.current("throughput.map") == 1.0

    def test_straggler_ratio_on_wave_seal(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        _task_span(bus, "j/main-m0000", "map", 0.0, 0.5)
        _task_span(bus, "j/main-m0001", "map", 0.0, 2.0)
        _wave_span(bus, "j/main", "map", 0, 0.0, 2.0, 2)
        (sample,) = [s for s in agg.samples if s[0] == "straggler_ratio"]
        metric, ts, value, detail = sample
        # max 2.0 over median 1.25 of [0.5, 2.0].
        assert value == 2.0 / 1.25
        # Stamped at the wave's own end, not the watermark.
        assert ts == 2.0
        assert detail["tasks"] == 2

    def test_single_task_wave_answers_one(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        _task_span(bus, "j-m0000", "map", 0.0, 1.0)
        _wave_span(bus, "j", "map", 0, 0.0, 1.0, 1)
        (sample,) = [s for s in agg.samples if s[0] == "straggler_ratio"]
        assert sample[2] == 1.0

    def test_cache_hit_ratio(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        for i, hit in enumerate([True, True, False, True]):
            bus.publish_span(
                "cache.probe", "op.detail", "t", 0.1 * i, 0.1 * i + 0.01,
                6, {"hit": hit},
            )
        assert agg.current("cache_hit_ratio") == 0.75

    def test_counters_drive_reuse_fault_build(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        bus.publish_counters(
            "task", "t", 0.0, 0.5,
            {
                "reuse.probes": 10.0,
                "reuse.hits": 4.0,
                "fault.tasks_retried": 1.0,
                "fault.lookups_retried": 3.0,
                "build.records_indexed": 100.0,
            },
        )
        bus.publish_counters(
            "task", "t", 0.5, 0.9, {"build.records_indexed": 50.0}
        )
        assert agg.current("reuse_hit_ratio") == 0.4
        assert agg.current("fault_retry_rate") == 4.0 / DEFAULT_WINDOW_S
        assert agg.current("build_progress") == 150.0  # cumulative level

    def test_zero_deltas_emit_nothing(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        bus.publish_counters("task", "t", 0.0, 0.5, {"reuse.probes": 0.0})
        assert agg.samples == []

    def test_display_events_never_touch_watermark_or_samples(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        bus.publish_instant("slot.commit", "sched", "t", 99.0, 4, {})
        bus.publish_audit("replan", 123.0, job="j")
        assert agg.watermark == 0.0
        assert agg.samples == []

    def test_watermark_monotone_under_commit_order(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        _task_span(bus, "j-m0000", "map", 0.0, 3.0)
        _task_span(bus, "j-m0001", "map", 0.0, 1.0)  # committed later, ended earlier
        assert agg.watermark == 3.0
        # The second sample is emitted at the watermark, not its own end.
        assert [s[1] for s in agg.samples] == [3.0, 3.0]

    def test_lookup_latency_histogram(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        bus.publish_span("lookup", "op", "t", 0.0, 0.02, 5, {})
        bus.publish_span("lookup.batch", "op", "t", 0.0, 0.2, 5, {})
        assert agg.lookup_latency.count == 2

    def test_sample_listeners_see_emission_order(self):
        bus = TelemetryBus()
        agg = LiveAggregators(bus)
        seen = []
        agg.on_sample(lambda m, ts, v, d: seen.append(m))
        _task_span(bus, "j-m0000", "map", 0.0, 0.5)
        assert seen == ["throughput.map"]
