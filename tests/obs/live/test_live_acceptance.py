"""The PR's live-telemetry acceptance criteria, pinned as tests:

* a traced+live run with one x4-slow host fires the ``wave-straggler``
  SLO alert, and its firing window overlaps the slow host's
  critical-path segments;
* the same workload on a clean cluster fires zero alerts;
* both live runs are bit-identical (simulated time, counters, outputs)
  to their live-off twins -- the bus is purely passive.
"""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from repro.obs import Observability
from repro.obs.live import LiveSession
from repro.simcluster.cluster import Cluster
from repro.simcluster.faults import FaultPlan

SLOW_HOST = "node05"


class _CityOp(IndexOperator):
    def pre_process(self, key, value, index_input):
        user, payload = value
        index_input.put(0, user)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        collector.collect(cities[0] if cities else "unknown", value)


def _run(slow: bool, live: bool):
    """One forced-Cache run; a fresh environment per call so runs are
    fully independent."""
    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=32 * 1024)
    rng = random.Random(13)
    records = [
        (i, (f"user{rng.randrange(400):04d}", "x" * 150)) for i in range(8000)
    ]
    dfs.write("/in/events", records)
    kv = DistributedKVStore("profiles", cluster, service_time=20e-3)
    for u in range(400):
        kv.put_unique(f"user{u:04d}", f"city{u % 25:02d}")
    job = IndexJobConf("live-acc")
    job.set_input_paths("/in/events").set_output_path("/out/live-acc")
    job.add_head_index_operator(_CityOp("city-op").add_index(IndexAccessor(kv)))
    job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
    job.set_reducer(
        FnReducer(lambda k, vs: [(k, len(vs))], "count"), num_reduce_tasks=8
    )
    session = LiveSession() if live else None
    obs = Observability(bus=session.bus if session else None)
    runner = EFindRunner(
        cluster,
        dfs,
        fault_plan=(
            FaultPlan(seed=7, straggler_factors={SLOW_HOST: 4.0})
            if slow
            else None
        ),
        obs=obs,
    )
    result = runner.run(job, mode="forced", forced_strategy=Strategy.CACHE)
    if session is not None:
        session.finish()
    return result, obs, session


@pytest.fixture(scope="module")
def slow_live():
    return _run(slow=True, live=True)


class TestSlowHostFiresStragglerSlo:
    def test_alert_fires_with_evidence(self, slow_live):
        _result, _obs, session = slow_live
        straggler = [
            a for a in session.alert_rows() if a["rule"] == "wave-straggler"
        ]
        assert straggler, "x4-slow host must trip the straggler SLO"
        head = straggler[0]
        assert head["severity"] == "warning"
        assert head["metric"] == "straggler_ratio"
        assert head["peak"] >= 2.5
        assert head["evidence"][0]["value"] == pytest.approx(head["peak"])
        assert head["detail"]["kind"] == "map"

    def test_firing_window_overlaps_slow_host_critical_path(
        self, slow_live, tmp_path
    ):
        from repro.obs.analysis import critical_path as cp
        from repro.obs.analysis.loader import load_one

        result, obs, session = slow_live
        paths = obs.export(str(tmp_path), "slow", alerts=session.alert_rows())
        artifact = load_one(paths["trace"])
        (path,) = cp.critical_paths(artifact.spans, alerts=artifact.alert_rows)
        hit = [
            seg
            for seg in path.segments
            if seg.kind == "task"
            and any(a.startswith("wave-straggler") for a in seg.alerts)
        ]
        assert hit, "no critical-path task segment overlaps the alert window"
        # The overlapped segments are the slow host's: on an otherwise
        # uniform wave the critical path runs through the x4 tasks, and
        # each annotated segment must be its wave's slowest.
        tasks = [s for s in artifact.spans if s["name"] == "task"]
        for seg in hit:
            peers = [
                t for t in tasks
                if t["args"].get("kind") == seg.phase
                and t["args"].get("wave") == seg.wave
            ]
            slowest = max(peers, key=lambda t: t["dur"])
            assert seg.name == slowest["args"]["task"]

    def test_live_run_is_bit_identical_to_live_off_twin(self, slow_live):
        live_result, _obs, session = slow_live
        off_result, _off_obs, _none = _run(slow=True, live=False)
        assert session.bus.published > 0
        assert live_result.sim_time == off_result.sim_time
        assert live_result.counters.to_dict() == off_result.counters.to_dict()
        assert sorted(live_result.output) == sorted(off_result.output)


class TestCleanClusterStaysQuiet:
    def test_zero_alerts_and_bit_identity(self):
        live_result, _obs, session = _run(slow=False, live=True)
        assert session.alert_rows() == []
        off_result, _off_obs, _none = _run(slow=False, live=False)
        assert live_result.sim_time == off_result.sim_time
        assert live_result.counters.to_dict() == off_result.counters.to_dict()
        assert sorted(live_result.output) == sorted(off_result.output)
