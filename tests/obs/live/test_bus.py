"""Tests for the telemetry event bus: ordering, helpers, and the
export-grid timestamp quantization the replay contract rests on."""

import pytest

from repro.obs.live.bus import (
    KIND_AUDIT,
    KIND_COUNTERS,
    KIND_INSTANT,
    KIND_SPAN,
    TelemetryBus,
    _quantize_range,
    _quantize_ts,
)


class TestBusDelivery:
    def test_publish_order_and_monotone_seq(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish_span("b", "task", "t0", 2.0, 3.0, 4, {"x": 1})
        bus.publish_span("a", "task", "t0", 0.0, 1.0, 4, {})
        bus.publish_instant("i", "sched", "t0", 0.5, 4, {})
        assert [e.name for e in seen] == ["b", "a", "i"]
        assert [e.seq for e in seen] == [0, 1, 2]
        assert bus.published == 3

    def test_fanout_in_subscription_order(self):
        bus = TelemetryBus()
        order = []
        bus.subscribe(lambda e: order.append("first"))
        bus.subscribe(lambda e: order.append("second"))
        bus.publish_audit("replan", 1.0, job="j")
        assert order == ["first", "second"]

    def test_unsubscribe(self):
        bus = TelemetryBus()
        seen = []
        fn = bus.subscribe(seen.append)
        bus.publish_instant("x", "c", "t", 0.0, 0, {})
        bus.unsubscribe(fn)
        bus.publish_instant("y", "c", "t", 0.0, 0, {})
        assert [e.name for e in seen] == ["x"]
        assert len(bus) == 0

    def test_event_kinds_and_payloads(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish_span("s", "op", "t", 0.0, 1.0, 5, {"op": "head0"})
        bus.publish_instant("i", "sched", "t", 0.5, 4, {"wave": 1})
        bus.publish_counters("task", "t", 0.0, 1.0, {"g.n": 2.0}, task="j-m0")
        bus.publish_audit("replan", 0.7, job="j", phase="map")
        kinds = [e.kind for e in seen]
        assert kinds == [KIND_SPAN, KIND_INSTANT, KIND_COUNTERS, KIND_AUDIT]
        span, inst, ctr, audit = seen
        assert span.payload["args"] == {"op": "head0"}
        assert span.start == 0.0 and span.ts == 1.0  # span ts is its end
        assert inst.start == inst.ts == 0.5
        assert ctr.payload["deltas"] == {"g.n": 2.0}
        assert ctr.payload["task"] == "j-m0"
        assert audit.name == "replan"
        assert audit.payload == {"job": "j", "phase": "map"}

    def test_events_are_frozen(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish_instant("x", "c", "t", 0.0, 0, {})
        with pytest.raises(AttributeError):
            seen[0].ts = 99.0


class TestQuantization:
    """Bus timestamps snap onto the Chrome-trace export grid so replaying
    an exported trace reproduces the execution-time stream exactly."""

    def test_matches_loader_reconstruction(self):
        # The awkward floats a simulation actually produces.
        start, end = 0.9949680197685573, 1.1150381313623072
        us = 1_000_000.0
        exported_ts = round(start * us, 3)
        exported_dur = round(max(0.0, end - start) * us, 3)
        loader_start = exported_ts / us
        loader_end = loader_start + exported_dur / us
        assert _quantize_range(start, end) == (loader_start, loader_end)

    def test_publish_span_quantizes(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish_span("s", "task", "t", 1 / 3, 2 / 3, 4, {})
        (ev,) = seen
        assert ev.start == _quantize_ts(1 / 3)
        # end = start + quantized duration, mirroring the loader.
        assert ev.ts == ev.start + round((2 / 3 - 1 / 3) * 1e6, 3) / 1e6

    def test_counters_quantize_like_their_span(self):
        bus = TelemetryBus()
        seen = []
        bus.subscribe(seen.append)
        start, end = 0.12345678901, 0.98765432109
        bus.publish_counters("task", "t", start, end, {"a.b": 1.0})
        bus.publish_span("task", "task", "t", start, end, 4, {})
        ctr, span = seen
        assert (ctr.start, ctr.ts) == (span.start, span.ts)

    def test_negative_duration_clamped(self):
        s, e = _quantize_range(2.0, 1.0)
        assert s == 2.0 and e == 2.0

    def test_quantize_is_idempotent(self):
        for value in (0.0, 1 / 7, 123.456789, 0.9949680197685573):
            q = _quantize_ts(value)
            assert _quantize_ts(q) == q
