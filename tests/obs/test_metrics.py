"""Unit tests for the metrics registry."""

import pytest

from repro.mapreduce.counters import Counters
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    MetricsRegistry,
    boundaries_from_export,
)


class TestCounterAndGauge:
    def test_counter_accumulates(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.counter("c").inc(2.5)
        assert r.counter("c").value == 3.5

    def test_counter_rejects_negative(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("c").inc(-1)

    def test_gauge_last_writer_wins(self):
        r = MetricsRegistry()
        r.gauge("g").set(5.0)
        r.gauge("g").set(2.0)
        assert r.gauge("g").value == 2.0

    def test_get_or_create_identity(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.histogram("h") is r.histogram("h")
        assert len(r) == 2


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("h", buckets=[0.01, 0.1, 1.0])
        for v in (0.005, 0.05, 0.05, 0.5):
            h.observe(v)
        assert h.counts == [1, 2, 1]
        assert h.overflow == 0
        assert h.count == 4

    def test_boundary_value_goes_to_its_bucket(self):
        h = Histogram("h", buckets=[0.01, 0.1])
        h.observe(0.01)  # counts[i] is "value <= buckets[i]"
        assert h.counts == [1, 0]

    def test_overflow_bucket(self):
        h = Histogram("h", buckets=[0.01, 0.1])
        h.observe(5.0)
        assert h.overflow == 1
        assert h.counts == [0, 0]

    def test_mean_and_quantiles(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.mean == pytest.approx(1.625)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.quantile(0.99) == 0.0

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=[1.0, 0.5])
        with pytest.raises(ValueError):
            Histogram("h", buckets=[])

    def test_default_buckets_cover_latency_range(self):
        assert DEFAULT_LATENCY_BUCKETS_S[0] <= 1e-5
        assert DEFAULT_LATENCY_BUCKETS_S[-1] >= 1.0


class TestQuantileBoundaries:
    """Nearest-rank quantile regressions: exact on bucket boundaries,
    deterministic for n < 2, never answering an empty bucket."""

    def _h(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        return h  # counts [1, 2, 1]

    def test_rank_on_cumulative_boundary_stays_in_bucket(self):
        h = self._h()
        # rank 1 is the last observation of bucket 1.0; rank 3 the last
        # of bucket 2.0 -- neither may spill into the next bucket.
        assert h.quantile(0.25) == 1.0
        assert h.quantile(0.75) == 2.0
        # one rank past the boundary moves on
        assert h.quantile(0.76) == 4.0

    def test_q_zero_is_first_observation_not_first_bucket(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        h.observe(3.0)  # buckets 1.0 and 2.0 stay empty
        assert h.quantile(0.0) == 4.0

    def test_single_sample_deterministic_for_all_q(self):
        h = Histogram("h", buckets=[1.0, 2.0, 4.0])
        h.observe(1.5)
        for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert h.quantile(q) == 2.0

    def test_two_samples_split_at_median(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(0.5)
        h.observe(1.5)
        assert h.quantile(0.5) == 1.0  # rank ceil(1.0) == 1
        assert h.quantile(0.51) == 2.0

    def test_float_noise_on_rank_product_is_absorbed(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        for _ in range(7):
            h.observe(0.5)
        for _ in range(93):
            h.observe(1.5)
        # 0.07 * 100 == 7.000000000000001 in floats; the 7th
        # observation is still in the first bucket.
        assert h.quantile(0.07) == 1.0

    def test_overflow_reports_largest_finite_bound(self):
        h = Histogram("h", buckets=[1.0, 2.0])
        h.observe(10.0)
        assert h.quantile(1.0) == 2.0


class TestAbsorbCounters:
    def test_absorbs_into_prefixed_gauges(self):
        counters = Counters()
        counters.increment("fault", "lookups_retried", 4)
        counters.increment("batch", "batches_issued", 2)
        r = MetricsRegistry()
        r.absorb_counters(counters, prefix="job.q3")
        snap = r.to_dict()["gauges"]
        assert snap["job.q3.fault.lookups_retried"] == 4.0
        assert snap["job.q3.batch.batches_issued"] == 2.0

    def test_reabsorb_overwrites_not_adds(self):
        """Snapshots are levels: absorbing a newer total must replace
        the old value, which is why they are gauges."""
        counters = Counters()
        counters.increment("g", "n", 3)
        r = MetricsRegistry()
        r.absorb_counters(counters)
        counters.increment("g", "n", 2)
        r.absorb_counters(counters)
        assert r.gauge("counters.g.n").value == 5.0


class TestExportBoundaries:
    """The exported histogram names its bucket edges explicitly -- the
    regression pinned here is that live rolling windows and offline
    consumers reprice quantiles from *exactly* the edges the histogram
    observed with, not from assumed defaults."""

    def test_boundaries_include_overflow_marker(self):
        h = Histogram("h", buckets=[0.1, 1.0])
        assert h.boundaries() == [0.1, 1.0, "+Inf"]
        export = h.to_export()
        assert export["boundaries"] == [0.1, 1.0, "+Inf"]
        assert export["buckets"] == [0.1, 1.0]

    def test_boundaries_are_exact_not_approximate(self):
        # Deliberately awkward edges: repr round-trips must be exact.
        edges = [1e-5, 0.1 + 0.2, 1 / 3, 7.000000000000001]
        h = Histogram("h", buckets=sorted(edges))
        assert boundaries_from_export(h.to_export()) == sorted(edges)

    def test_from_export_round_trips_quantiles(self):
        h = Histogram("h", buckets=[0.01, 0.1, 1.0, 10.0])
        for v in (0.005, 0.05, 0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        export = h.to_export()
        rebuilt = Histogram.from_export("h", export)
        assert rebuilt.buckets == h.buckets
        assert rebuilt.counts == h.counts
        assert rebuilt.overflow == h.overflow
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert rebuilt.quantile(q) == h.quantile(q)
        assert rebuilt.to_export() == export

    def test_from_export_rejects_count_mismatch(self):
        export = Histogram("h", buckets=[0.1, 1.0]).to_export()
        export["counts"] = [1]
        with pytest.raises(ValueError, match="1 counts for 2 buckets"):
            Histogram.from_export("h", export)

    def test_boundaries_from_export_falls_back_to_buckets(self):
        # Exports predating the explicit field still reprice correctly.
        assert boundaries_from_export({"buckets": [0.1, 1.0]}) == [0.1, 1.0]
        assert boundaries_from_export(
            {"boundaries": [0.1, 1.0, "+Inf"], "buckets": [9.9]}
        ) == [0.1, 1.0]

    def test_live_aggregator_uses_the_same_edges(self):
        """The live lookup-latency histogram and the offline export
        share one Histogram class, so their edges cannot drift."""
        from repro.obs.live.windows import LiveAggregators

        agg = LiveAggregators()
        assert agg.lookup_latency.boundaries() == Histogram("h").boundaries()


class TestToDict:
    def test_histogram_snapshot_shape(self):
        r = MetricsRegistry()
        r.histogram("h", buckets=[0.1, 1.0]).observe(0.05)
        snap = r.to_dict()["histograms"]["h"]
        for key in ("buckets", "boundaries", "counts", "overflow", "count",
                    "sum", "mean", "p50", "p99"):
            assert key in snap
        assert snap["count"] == 1

    def test_json_serializable(self):
        import json

        r = MetricsRegistry()
        r.counter("c").inc()
        r.gauge("g").set(1.5)
        r.histogram("h").observe(0.2)
        json.dumps(r.to_dict(), allow_nan=False)
