"""Failure-injection tests: errors from indices and mis-wired jobs must
surface loudly, never as silently wrong output."""

import pytest

from repro.common.errors import DataFlowError, IndexLookupError
from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.indices.base import IndexService, MappingIndex
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from tests.conftest import UserCityOperator


class FlakyIndex(IndexService):
    """Fails on a specific key."""

    def __init__(self, poison):
        super().__init__("flaky", service_time=1e-4)
        self.poison = poison

    def _lookup(self, key):
        if key == self.poison:
            raise IndexLookupError(f"backend exploded on {key!r}")
        return [key]


def simple_job(env, name, accessor):
    job = IndexJobConf(name)
    job.set_input_paths("/in/events").set_output_path(f"/out/{name}")
    job.add_head_index_operator(UserCityOperator("op").add_index(accessor))
    job.set_mapper(FnMapper(lambda k, v: [(k, v)], "i"))
    job.set_reducer(FnReducer(lambda k, vs: [(k, len(vs))], "c"), num_reduce_tasks=4)
    return job


class TestIndexErrorsPropagate:
    def test_strict_store_raises_through_the_job(self, efind_env):
        strict = DistributedKVStore("strict", efind_env.cluster, strict=True)
        strict.put_unique("only-key", "x")
        job = simple_job(efind_env, "strict-job", IndexAccessor(strict))
        with pytest.raises(IndexLookupError):
            efind_env.runner().run(
                job, mode="forced", forced_strategy=Strategy.BASELINE
            )

    def test_flaky_backend_raises_through_the_job(self, efind_env):
        # every user key except the poisoned one resolves
        flaky = FlakyIndex(poison="user0001")
        job = simple_job(efind_env, "flaky-job", IndexAccessor(flaky))
        with pytest.raises(IndexLookupError):
            efind_env.runner().run(
                job, mode="forced", forced_strategy=Strategy.CACHE
            )

    def test_flaky_backend_raises_in_shuffle_job_too(self, efind_env):
        flaky = FlakyIndex(poison="user0001")
        job = simple_job(efind_env, "flaky-repart", IndexAccessor(flaky))
        with pytest.raises(IndexLookupError):
            efind_env.runner().run(
                job,
                mode="forced",
                forced_strategy=Strategy.REPART,
                extra_job_targets=["head0"],
            )


class TestMiswiredJobs:
    def test_unknown_input_path(self, efind_env):
        job = efind_env.make_job("bad-in")
        job.set_input_paths("/does/not/exist")
        with pytest.raises(DataFlowError):
            efind_env.runner().run(
                job, mode="forced", forced_strategy=Strategy.BASELINE
            )

    def test_empty_input_file_is_fine(self, efind_env):
        efind_env.dfs.write("/in/empty", [])
        job = efind_env.make_job("empty-in")
        job.set_input_paths("/in/empty")
        res = efind_env.runner().run(
            job, mode="forced", forced_strategy=Strategy.CACHE
        )
        assert res.output == []

    def test_operator_state_not_shared_between_jobs(self, efind_env):
        """Reusing one IndexOperator object across two runs must not
        leak lookup results between them (fresh runner, fresh plan)."""
        op = UserCityOperator("shared").add_index(IndexAccessor(efind_env.kv))
        for i in range(2):
            job = IndexJobConf(f"reuse-{i}")
            job.set_input_paths("/in/events").set_output_path(f"/out/reuse-{i}")
            job.add_head_index_operator(op)
            job.set_mapper(FnMapper(lambda k, v: [(k, v)], "i"))
            job.set_reducer(
                FnReducer(lambda k, vs: [(k, len(vs))], "c"), num_reduce_tasks=4
            )
            res = efind_env.runner().run(
                job, mode="forced", forced_strategy=Strategy.CACHE
            )
            assert sum(v for _k, v in res.output) == efind_env.num_records


class TestIdempotenceFingerprint:
    def test_index_unchanged_during_job(self, efind_env):
        before = efind_env.kv.fingerprint()
        efind_env.runner().run(
            efind_env.make_job("fp"), mode="forced", forced_strategy=Strategy.CACHE
        )
        assert efind_env.kv.fingerprint() == before

    def test_mapping_index_stable(self):
        idx = MappingIndex("m", {1: "one"})
        fp = idx.fingerprint()
        idx.lookup(1)
        idx.lookup(2)
        assert idx.fingerprint() == fp
