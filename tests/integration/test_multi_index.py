"""Integration tests for multiple independent indices in one
IndexOperator (Section 3.5)."""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer


class TwoIndexOperator(IndexOperator):
    """Looks up a user profile *and* a product catalog independently."""

    def pre_process(self, key, value, index_input):
        user, product, payload = value
        index_input.put(0, user)
        index_input.put(1, product)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        prices = index_output.get(1).get_all()
        if not cities or not prices:
            return
        collector.collect((cities[0], prices[0]), 1)


@pytest.fixture(scope="module")
def env():
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster

    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=32 * 1024)
    rng = random.Random(3)
    num_records, num_users, num_products = 6000, 300, 40
    records = [
        (
            i,
            (
                f"user{rng.randrange(num_users):04d}",
                f"prod{rng.randrange(num_products):03d}",
                "x" * 60,
            ),
        )
        for i in range(num_records)
    ]
    dfs.write("/in/orders", records)
    users = DistributedKVStore("users", cluster, service_time=4e-3)
    for u in range(num_users):
        users.put_unique(f"user{u:04d}", f"city{u % 20:02d}")
    products = DistributedKVStore("products", cluster, service_time=4e-3)
    for p in range(num_products):
        products.put_unique(f"prod{p:03d}", round(9.99 + p, 2))
    return cluster, dfs, users, products, num_records


def make_job(env, name):
    cluster, dfs, users, products, _n = env
    op = TwoIndexOperator("two-idx")
    op.add_index(IndexAccessor(users))
    op.add_index(IndexAccessor(products))
    job = IndexJobConf(name)
    job.set_input_paths("/in/orders").set_output_path(f"/out/{name}")
    job.add_head_index_operator(op)
    job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
    job.set_reducer(FnReducer(lambda k, vs: [(k, sum(vs))], "sum"), num_reduce_tasks=8)
    return job


class TestTwoIndexOperator:
    def test_baseline_runs_both_lookups(self, env):
        cluster, dfs, users, products, n = env
        users.reset_accounting()
        products.reset_accounting()
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "mi-base"), mode="forced", forced_strategy=Strategy.BASELINE
        )
        assert users.lookups_served == n
        assert products.lookups_served == n
        assert sum(v for _, v in res.output) == n

    def test_all_strategies_agree(self, env):
        cluster, dfs, *_ = env
        outputs = []
        for strat in (Strategy.BASELINE, Strategy.CACHE, Strategy.REPART):
            res = EFindRunner(cluster, dfs).run(
                make_job(env, f"mi-{strat.value}"),
                mode="forced",
                forced_strategy=strat,
                extra_job_targets=["head0"],
            )
            outputs.append(sorted(res.output))
        assert outputs[0] == outputs[1] == outputs[2]

    def test_forced_repart_adds_one_stage_per_index(self, env):
        cluster, dfs, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "mi-rep2"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        # both indices of head0 forced to repart -> two shuffle stages
        assert res.num_stages == 3

    def test_static_optimization_orders_extra_job_first(self, env):
        cluster, dfs, *_ = env
        runner = EFindRunner(cluster, dfs)
        runner.run(
            make_job(env, "mi-prof"), mode="forced", forced_strategy=Strategy.BASELINE
        )
        res = runner.run(make_job(env, "mi-opt"), mode="static")
        plan = res.plan.operators["head0"]
        strategies_in_order = [plan.strategies[j] for j in plan.order]
        seen_cheap = False
        for s in strategies_in_order:
            if s in (Strategy.BASELINE, Strategy.CACHE):
                seen_cheap = True
            else:
                assert not seen_cheap, "Property 4 violated in chosen plan"

    def test_static_output_correct(self, env):
        cluster, dfs, *_ = env
        runner = EFindRunner(cluster, dfs)
        base = runner.run(
            make_job(env, "mi-prof2"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        opt = runner.run(make_job(env, "mi-opt2"), mode="static")
        assert sorted(opt.output) == sorted(base.output)

    def test_dynamic_output_correct(self, env):
        cluster, dfs, *_ = env
        base = EFindRunner(cluster, dfs).run(
            make_job(env, "mi-b2"), mode="forced", forced_strategy=Strategy.BASELINE
        )
        dyn = EFindRunner(cluster, dfs).run(make_job(env, "mi-dyn"), mode="dynamic")
        assert sorted(dyn.output) == sorted(base.output)
        assert dyn.sim_time <= base.sim_time + 1e-9
