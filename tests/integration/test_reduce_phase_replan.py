"""Deterministic exercise of the Figure 10(b) path: a plan change in
the middle of the Reduce phase, keeping completed reduce tasks' outputs
and re-reducing the remaining partitions under the new (tail-operator)
plan.

The tail lookup must be *many-to-one* (here: group -> city) for a tail
plan change to pay off -- if every reduce group probes a distinct key
there is nothing to deduplicate and declining to replan is correct.
"""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer

NUM_GROUPS = 3_000
NUM_CITIES = 25


def city_of(group_key: str) -> str:
    return f"city{int(group_key[3:]) % NUM_CITIES:02d}"


class CityRegionTailOperator(IndexOperator):
    """Tail operator: look up each group's *city* (many groups share
    one city -> heavy duplicate tail keys)."""

    def pre_process(self, key, value, index_input):
        index_input.put(0, city_of(key))
        return key, value

    def post_process(self, key, value, index_output, collector):
        regions = index_output.get(0).get_all()
        collector.collect((regions[0] if regions else "?", key), value)


@pytest.fixture(scope="module")
def env():
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster
    from repro.simcluster.timemodel import TimeModel

    cluster = Cluster(
        num_nodes=12,
        map_slots_per_node=2,
        reduce_slots_per_node=2,
        time_model=TimeModel(job_startup_time=0.5, task_startup_time=0.03),
    )
    dfs = DistributedFileSystem(cluster, block_size=32 * 1024)
    rng = random.Random(5)
    num_records = 12_000
    records = [
        (i, (f"grp{rng.randrange(NUM_GROUPS):04d}", "x" * 40))
        for i in range(num_records)
    ]
    dfs.write("/in/groups", records)
    kv = DistributedKVStore("city-regions", cluster, service_time=40e-3)
    for c in range(NUM_CITIES):
        kv.put_unique(f"city{c:02d}", f"region{c % 5}")
    return cluster, dfs, kv, num_records


def make_job(env, name):
    cluster, dfs, kv, *_ = env
    job = IndexJobConf(name)
    job.set_input_paths("/in/groups").set_output_path(f"/out/{name}")
    job.set_mapper(FnMapper(lambda k, v: [(v[0], 1)], "by-group"))
    job.set_reducer(
        FnReducer(lambda k, vs: [(k, sum(vs))], "sum"),
        num_reduce_tasks=48,  # two reduce waves over 24 slots
    )
    job.add_tail_index_operator(
        CityRegionTailOperator("city-tail").add_index(IndexAccessor(kv))
    )
    return job


def dynamic_runner(env, obs=None):
    cluster, dfs, *_ = env
    return EFindRunner(cluster, dfs, plan_change_overhead=0.2, obs=obs)


class TestMidReduceReplan:
    def test_replan_fires_in_reduce_phase(self, env):
        res = dynamic_runner(env).run(make_job(env, "rr1"), mode="dynamic")
        assert res.replanned
        assert res.replan_phase == "reduce"
        assert res.stage_results[0].aborted_phase == "reduce"

    def test_output_matches_baseline(self, env):
        cluster, dfs, _kv, num_records = env
        base = EFindRunner(cluster, dfs).run(
            make_job(env, "rr2-base"),
            mode="forced",
            forced_strategy=Strategy.BASELINE,
        )
        dyn = dynamic_runner(env).run(make_job(env, "rr2"), mode="dynamic")
        assert dyn.replanned and dyn.replan_phase == "reduce"
        assert sorted(dyn.output) == sorted(base.output)
        assert sum(v for _k, v in dyn.output) == num_records

    def test_completed_partitions_not_reprocessed(self, env):
        """The aborted stage's completed reduce outputs appear verbatim
        in the final output (free reuse, Figure 10(b))."""
        res = dynamic_runner(env).run(make_job(env, "rr3"), mode="dynamic")
        assert res.replanned
        completed = res.stage_results[0].output
        assert completed  # some partitions finished under the old plan
        final = set(res.output)
        for record in completed:
            assert record in final

    def test_final_output_persisted(self, env):
        cluster, dfs, *_ = env
        res = dynamic_runner(env).run(make_job(env, "rr4"), mode="dynamic")
        assert sorted(dfs.read("/out/rr4"), key=repr) == sorted(
            res.output, key=repr
        )

    def test_resumed_stages_cover_remaining_partitions_only(self, env):
        cluster, dfs, _kv, num_records = env
        res = dynamic_runner(env).run(make_job(env, "rr5"), mode="dynamic")
        assert res.replanned
        aborted = res.stage_results[0]
        done = sum(v for _k, v in aborted.output)
        resumed = sum(v for _k, v in res.stage_results[-1].output)
        assert done + resumed == num_records

    def test_audit_log_captures_mid_reduce_replan(self, env):
        """The audit record of the reduce-phase re-plan is complete: a
        ``replan`` verdict with its gate, per-strategy costs, and the
        Figure 10(b) mid-reduce reuse outcome."""
        from repro.obs import Observability
        from repro.obs.audit import VERDICT_REPLAN

        obs = Observability()
        res = dynamic_runner(env, obs=obs).run(
            make_job(env, "rr-audit"), mode="dynamic"
        )
        assert res.replanned and res.replan_phase == "reduce"
        # the result carries this run's records; the log holds them all
        assert res.audit == obs.audit.for_job("rr-audit")
        applied = [r for r in res.audit if r.applied]
        assert len(applied) == 1
        record = applied[0]
        assert record.verdict == VERDICT_REPLAN
        assert record.phase == "reduce"
        assert record.job == "rr-audit"
        assert record.sim_time > 0
        assert record.applied_at >= record.sim_time
        # gate: the tail operator passed with >= 2 reduce-task samples
        entry = next(g for g in record.gate if g["operator"] == "tail0")
        assert entry["stable"] and entry["num_samples"] >= 2
        assert entry["relative_deviation"] <= record.variance_threshold
        # all four Equation 1-4 costs priced for the tail index
        detail = next(
            o for o in record.operators if o["operator"] == "tail0"
        )
        costs = detail["strategies"]["0"]["costs"]
        assert set(costs) == {"base", "cache", "repart", "idxloc", "partial"}
        assert all(c >= 0.0 for c in costs.values())
        samples = detail["samples"]["0"]
        assert samples["theta"] > 1.0  # many groups share one city
        assert samples["tj"] > 0.0
        assert samples["lookups_observed"] > 0
        # the applied change switched the tail strategy and recorded
        # the mid-reduce cutover with completed-partition reuse
        assert record.new_plan != record.current_plan
        assert record.improvement > record.plan_change_cost
        assert record.reuse["cutover"] == "mid-reduce"
        assert record.reuse["reduce_tasks_reused"] > 0
        assert record.reuse["partitions_rerun"] > 0
        assert (
            record.reuse["reduce_tasks_reused"]
            + record.reuse["partitions_rerun"]
            == 48
        )

    def test_audit_records_survive_json_export(self, env):
        """Every record round-trips through the JSONL exporter (inf
        from the <2-sample gate must have been scrubbed)."""
        import json

        from repro.obs import Observability

        obs = Observability()
        dynamic_runner(env, obs=obs).run(make_job(env, "rr-json"), mode="dynamic")
        assert len(obs.audit) >= 1
        for row in obs.audit.to_dicts():
            parsed = json.loads(json.dumps(row, allow_nan=False))
            assert parsed["job"] == "rr-json"

    def test_no_replan_when_tail_keys_unique(self, env):
        """Control: distinct tail keys per group -> nothing to save ->
        EFind correctly keeps the baseline plan."""
        cluster, dfs, *_ = env
        unique_kv = DistributedKVStore("per-group", cluster, service_time=40e-3)
        for g in range(NUM_GROUPS):
            unique_kv.put_unique(f"grp{g:04d}", "payload")

        class PerGroupTail(IndexOperator):
            def pre_process(self, key, value, index_input):
                index_input.put(0, key)
                return key, value

            def post_process(self, key, value, index_output, collector):
                collector.collect(key, value)

        job = IndexJobConf("rr-unique")
        job.set_input_paths("/in/groups").set_output_path("/out/rr-unique")
        job.set_mapper(FnMapper(lambda k, v: [(v[0], 1)], "by-group"))
        job.set_reducer(
            FnReducer(lambda k, vs: [(k, sum(vs))], "sum"), num_reduce_tasks=48
        )
        job.add_tail_index_operator(
            PerGroupTail("pg").add_index(IndexAccessor(unique_kv))
        )
        res = dynamic_runner(env).run(job, mode="dynamic")
        assert not res.replanned
