"""Differential strategy-equivalence suite.

A seeded-random workload (skewed keys, multi-valued keys, empty
lookups) executes under every strategy x batch size x fault-plan
combination; all runs must produce identical (sorted) output, and the
``fault.*`` / ``batch.*`` counters must be internally consistent.
``batch_size=1`` additionally must be bit-identical -- exact output
order, exact simulated time, exact counters -- to a runner that never
heard of batching, because it takes the same code path.
"""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from repro.simcluster.cluster import Cluster
from repro.simcluster.faults import FaultPlan, RetryPolicy

STRATEGIES = {
    "Base": Strategy.BASELINE,
    "Cache": Strategy.CACHE,
    "Repart": Strategy.REPART,
    "Idxloc": Strategy.IDXLOC,
}
BATCH_SIZES = (1, 7, 64)

RETRY_POLICY = RetryPolicy(
    max_attempts=5,
    base_backoff=2e-3,
    backoff_multiplier=2.0,
    max_backoff=0.05,
    jitter=0.5,
    attempt_timeout=10e-3,
)


def make_fault_plan() -> FaultPlan:
    return FaultPlan(
        seed=4111,
        lookup_failure_rate=0.03,
        lookup_timeout_rate=0.015,
        dead_hosts=("node03",),
    )


class FanoutCityOperator(IndexOperator):
    """(user, payload) -> one record per city value of the user; users
    missing from the index fan out to a 'missing' bucket. Multi-valued
    keys therefore change the *output*, not just the timing."""

    def pre_process(self, key, value, index_input):
        user, payload = value
        index_input.put(0, user)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        if not cities:
            collector.collect("missing", value)
        for city in cities:
            collector.collect(city, value)


@pytest.fixture(scope="module")
def workload():
    """Seeded-random workload: Zipf-ish user skew, ~1/5 of the users
    multi-valued (two home cities), ~1/6 of the probes hitting users
    the index has never heard of (empty lookups)."""
    rng = random.Random(20140611)
    num_users, num_records = 180, 2500
    records = []
    for i in range(num_records):
        if rng.random() < 0.17:
            user = f"ghost{rng.randrange(40):03d}"  # not in the index
        else:
            user = f"user{int(num_users * rng.random() ** 2.4):03d}"  # skew
        records.append((i, (user, "x" * 30)))

    def build(cluster):
        kv = DistributedKVStore("eq-users", cluster, service_time=4e-3)
        for u in range(num_users):
            kv.put(f"user{u:03d}", f"city{u % 12:02d}")
            if u % 5 == 0:
                kv.put(f"user{u:03d}", f"city{(u + 7) % 12:02d}")
        return kv

    return records, build


def fresh_env(workload, fault: bool):
    records, build = workload
    cluster = Cluster(num_nodes=8, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=8 * 1024)
    dfs.write("/in/eq", records)
    kv = build(cluster)
    plan = None
    if fault:
        plan = make_fault_plan()
        kv.set_fault_plan(plan, RETRY_POLICY)

    def make_job(name):
        job = IndexJobConf(name)
        job.set_input_paths("/in/eq").set_output_path(f"/out/{name}")
        job.add_head_index_operator(
            FanoutCityOperator("head-op").add_index(IndexAccessor(kv))
        )
        job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
        job.set_reducer(
            FnReducer(lambda k, vs: [(k, len(vs))], "count"), num_reduce_tasks=4
        )
        return job

    return cluster, dfs, make_job, plan


def run_one(workload, mode: str, batch_size: int, fault: bool):
    cluster, dfs, make_job, plan = fresh_env(workload, fault)
    runner = EFindRunner(cluster, dfs, fault_plan=plan, batch_size=batch_size)
    return runner.run(
        make_job(f"eq-{mode}-b{batch_size}-{'f' if fault else 'c'}"),
        mode="forced",
        forced_strategy=STRATEGIES[mode],
        extra_job_targets=["head-op"],
    )


@pytest.fixture(scope="module")
def reference_output(workload):
    result = run_one(workload, "Base", 1, fault=False)
    return sorted(result.output)


@pytest.mark.parametrize("fault", [False, True], ids=["clean", "faults"])
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("mode", list(STRATEGIES))
def test_equivalence_and_counter_consistency(
    workload, reference_output, mode, batch_size, fault
):
    result = run_one(workload, mode, batch_size, fault)
    assert sorted(result.output) == reference_output

    faults = result.counters.group("fault")
    batches = result.counters.group("batch")

    # fault.* consistency: the retry layer must fully absorb injected
    # faults (no terminal failures), and clean runs inject nothing.
    assert faults.get("lookups_failed", 0.0) == 0.0
    if fault:
        assert faults.get("lookups_retried", 0.0) > 0
        assert faults.get("failovers", 0.0) > 0
    else:
        assert all(v == 0.0 for v in faults.values())

    # batch.* consistency. batch_size=1 must not even create the
    # counter group (it is the unbatched code path); batched runs must
    # fill every multiget with >= 1 key and <= batch_size records'
    # worth of keys, and cannot finish-flush more often than they flush.
    if batch_size == 1:
        assert batches == {}
    else:
        issued = batches.get("batches_issued", 0.0)
        keys = batches.get("keys_batched", 0.0)
        finishes = batches.get("flushes_on_finish", 0.0)
        assert issued > 0
        assert keys >= issued  # mean fill >= 1
        assert finishes <= issued


@pytest.mark.parametrize("mode", list(STRATEGIES))
def test_batch_size_one_is_bit_identical(workload, mode):
    """batch_size=1 (the default) and an explicit batch_size=1 runner
    agree exactly -- same output *order*, same simulated time to the
    bit, same counters -- because both take the pre-batching code path.
    """
    cluster, dfs, make_job, _ = fresh_env(workload, fault=False)
    default_runner = EFindRunner(cluster, dfs)
    explicit_runner = EFindRunner(cluster, dfs, batch_size=1)

    kwargs = dict(
        mode="forced",
        forced_strategy=STRATEGIES[mode],
        extra_job_targets=["head-op"],
    )
    a = default_runner.run(make_job(f"bit-a-{mode}"), **kwargs)
    b = explicit_runner.run(make_job(f"bit-b-{mode}"), **kwargs)

    assert list(a.output) == list(b.output)  # exact order, not sorted
    assert a.sim_time == b.sim_time  # bit-identical simulated time
    assert sorted(a.counters.items()) == sorted(b.counters.items())
    assert a.counters.group("batch") == {}


def test_batching_reduces_simulated_time(workload):
    """Larger batches amortise the per-request lookup cost, so the
    lookup-dominated baseline run gets monotonically faster."""
    times = []
    for batch_size in BATCH_SIZES:
        result = run_one(workload, "Base", batch_size, fault=False)
        times.append(result.sim_time)
    assert times[0] > times[1] > times[2]
