"""Exhaustive plan matrix: every (head strategy x body strategy)
combination executes through the compiler and produces identical
results. This covers compiler paths no single figure exercises (e.g.
head CACHE + body REPART, head IDXLOC + body IDXLOC: three jobs)."""

import itertools
import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Placement, Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.plan import AccessPlan, OperatorPlan
from repro.core.runner import EFindRunner
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from tests.conftest import UserCityOperator

ALL = (Strategy.BASELINE, Strategy.CACHE, Strategy.REPART, Strategy.IDXLOC)


class RegionTagOperator(IndexOperator):
    """Body operator: re-key (city, payload) records by region via the
    second index."""

    def pre_process(self, key, value, index_input):
        index_input.put(0, key)  # the record key is the city
        return key, value

    def post_process(self, key, value, index_output, collector):
        regions = index_output.get(0).get_all()
        collector.collect(regions[0] if regions else "?", value)


@pytest.fixture(scope="module")
def env():
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster

    cluster = Cluster(num_nodes=6, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=8 * 1024)
    rng = random.Random(9)
    num_users, num_cities = 120, 15
    records = [
        (i, (f"user{rng.randrange(num_users):04d}", "x" * 24))
        for i in range(2500)
    ]
    dfs.write("/in/matrix", records)
    users = DistributedKVStore("mx-users", cluster, service_time=2e-3)
    for u in range(num_users):
        users.put_unique(f"user{u:04d}", f"city{u % num_cities:02d}")
    cities = DistributedKVStore("mx-cities", cluster, service_time=2e-3)
    for c in range(num_cities):
        cities.put_unique(f"city{c:02d}", f"region{c % 4}")
    return cluster, dfs, users, cities


def make_job(env, name):
    cluster, dfs, users, cities = env
    job = IndexJobConf(name)
    job.set_input_paths("/in/matrix").set_output_path(f"/out/{name}")
    # head: (user, payload) -> (city, payload)
    job.add_head_index_operator(
        UserCityOperator("head-op").add_index(IndexAccessor(users))
    )
    job.set_mapper(FnMapper(lambda k, v: [(k, v)], "i"))
    # body: (city, payload) -> (region, payload)
    job.add_body_index_operator(
        RegionTagOperator("body-op").add_index(IndexAccessor(cities))
    )
    job.set_reducer(
        FnReducer(lambda k, vs: [(k, len(vs))], "count"), num_reduce_tasks=4
    )
    return job


def plan_for(head: Strategy, body: Strategy) -> AccessPlan:
    plan = AccessPlan()
    plan.operators["head0"] = OperatorPlan(
        "head0", Placement.BEFORE_MAP, order=[0], strategies={0: head}
    )
    plan.operators["body0"] = OperatorPlan(
        "body0", Placement.BETWEEN_MAP_REDUCE, order=[0], strategies={0: body}
    )
    return plan


class TestPlanMatrix:
    @pytest.fixture(scope="class")
    def reference(self, env):
        cluster, dfs, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "mx-ref"),
            mode="plan",
            plan=plan_for(Strategy.BASELINE, Strategy.BASELINE),
        )
        total = sum(v for _k, v in res.output)
        assert total == 2500
        return sorted(res.output)

    @pytest.mark.parametrize(
        "head,body", list(itertools.product(ALL, ALL)),
        ids=lambda s: s.value if isinstance(s, Strategy) else s,
    )
    def test_combination_correct(self, env, reference, head, body):
        cluster, dfs, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, f"mx-{head.value}-{body.value}"),
            mode="plan",
            plan=plan_for(head, body),
        )
        assert sorted(res.output) == reference

    def test_double_extra_job_stage_count(self, env):
        cluster, dfs, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "mx-stages"),
            mode="plan",
            plan=plan_for(Strategy.REPART, Strategy.IDXLOC),
        )
        # shuffle(head) + [lookup..map..pre..keyby] shuffle(body) + final
        assert res.num_stages == 3
