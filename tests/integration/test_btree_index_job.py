"""Integration: EFind over a *range-partitioned distributed B-tree*
index (every other integration test uses the hash-partitioned KV
store). Exercises the RangePartitionScheme through co-partitioning and
index locality."""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.indices.btree import DistributedBTree
from repro.mapreduce.api import FnMapper, FnReducer


class ScoreLookupOperator(IndexOperator):
    """Record (id, item_id) -> (score_bucket, 1) via the B-tree index."""

    def pre_process(self, key, value, index_input):
        index_input.put(0, value)
        return key, value

    def post_process(self, key, value, index_output, collector):
        scores = index_output.get(0).get_all()
        if not scores:
            return
        collector.collect(scores[0] // 100, 1)


@pytest.fixture(scope="module")
def env():
    from repro.dfs.filesystem import DistributedFileSystem
    from repro.simcluster.cluster import Cluster

    cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=16 * 1024)
    rng = random.Random(17)
    num_items = 1_500
    records = [(i, rng.randrange(num_items)) for i in range(9_000)]
    dfs.write("/in/lookups", records)
    btree = DistributedBTree(
        "scores",
        cluster,
        [(item, (item * 7919) % 1000) for item in range(num_items)],
        num_partitions=8,
        service_time=3e-3,
    )
    return cluster, dfs, btree, records


def make_job(env, name):
    cluster, dfs, btree, _records = env
    job = IndexJobConf(name)
    job.set_input_paths("/in/lookups").set_output_path(f"/out/{name}")
    job.add_head_index_operator(
        ScoreLookupOperator("score").add_index(IndexAccessor(btree))
    )
    job.set_mapper(FnMapper(lambda k, v: [(k, v)], "i"))
    job.set_reducer(FnReducer(lambda k, vs: [(k, sum(vs))], "s"), num_reduce_tasks=6)
    return job


def expected(env):
    _c, _d, _b, records = env
    out = {}
    for _rid, item in records:
        bucket = ((item * 7919) % 1000) // 100
        out[bucket] = out.get(bucket, 0) + 1
    return out


class TestBTreeBackedJob:
    @pytest.mark.parametrize(
        "strategy",
        [Strategy.BASELINE, Strategy.CACHE, Strategy.REPART, Strategy.IDXLOC],
    )
    def test_all_strategies_correct(self, env, strategy):
        cluster, dfs, *_ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, f"bt-{strategy.value}"),
            mode="forced",
            forced_strategy=strategy,
            extra_job_targets=["head0"],
        )
        assert dict(res.output) == expected(env)

    def test_idxloc_pins_tasks_to_range_partitions(self, env):
        cluster, dfs, btree, _ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "bt-pin"),
            mode="forced",
            forced_strategy=Strategy.IDXLOC,
            extra_job_targets=["head0"],
        )
        scheme = btree.partition_scheme
        lookup_stage = res.stage_results[1]
        replica_hosts = set(scheme.all_hosts())
        for task in lookup_stage.map_runs:
            assert task.node_host in replica_hosts

    def test_idxloc_shuffle_uses_range_partitioning(self, env):
        """Keys are co-partitioned with the B-tree's range scheme: the
        shuffle stage runs one reduce task per index partition, and the
        scheme is monotone over the key space."""
        cluster, dfs, btree, _ = env
        res = EFindRunner(cluster, dfs).run(
            make_job(env, "bt-range"),
            mode="forced",
            forced_strategy=Strategy.IDXLOC,
            extra_job_targets=["head0"],
        )
        shuffle = res.stage_results[0]
        scheme = btree.partition_scheme
        assert len(shuffle.reduce_runs) == scheme.num_partitions
        parts = [scheme.partition_of(k) for k in range(0, 1500, 10)]
        assert parts == sorted(parts)

    def test_dedup_counts_with_btree(self, env):
        cluster, dfs, btree, records = env
        btree.reset_accounting()
        EFindRunner(cluster, dfs).run(
            make_job(env, "bt-dedup"),
            mode="forced",
            forced_strategy=Strategy.REPART,
            extra_job_targets=["head0"],
        )
        distinct = len({item for _rid, item in records})
        assert btree.lookups_served <= distinct * 1.2
