"""Unit tests for chained-function execution."""

import pytest

from repro.mapreduce.api import ChainedFunction, TaskContext
from repro.mapreduce.chain import chain_name, run_chain
from repro.simcluster.cluster import Cluster
from repro.simcluster.timemodel import TimeModel


@pytest.fixture
def ctx():
    cluster = Cluster(num_nodes=1)
    return TaskContext(cluster.nodes[0], TimeModel())


class Doubler(ChainedFunction):
    def process(self, key, value, collector, ctx):
        collector.collect(key, value * 2)


class Exploder(ChainedFunction):
    """Emits each value twice: tests fan-out between stages."""

    def process(self, key, value, collector, ctx):
        collector.collect(key, value)
        collector.collect(key, value)


class Dropper(ChainedFunction):
    def process(self, key, value, collector, ctx):
        if value % 2 == 0:
            collector.collect(key, value)


class Buffered(ChainedFunction):
    """Emits only at finish: tests the start/finish lifecycle."""

    def start(self, ctx):
        self.buffer = []

    def process(self, key, value, collector, ctx):
        self.buffer.append((key, value))

    def finish(self, collector, ctx):
        collector.collect("count", len(self.buffer))


class TestRunChain:
    def test_empty_chain_passthrough(self, ctx):
        records = [("a", 1), ("b", 2)]
        assert run_chain([], records, ctx) == records

    def test_single_stage(self, ctx):
        out = run_chain([Doubler()], [("a", 1)], ctx)
        assert out == [("a", 2)]

    def test_stage_output_feeds_next(self, ctx):
        out = run_chain([Doubler(), Doubler()], [("a", 1)], ctx)
        assert out == [("a", 4)]

    def test_fanout_then_transform(self, ctx):
        out = run_chain([Exploder(), Doubler()], [("a", 3)], ctx)
        assert out == [("a", 6), ("a", 6)]

    def test_filter_stage(self, ctx):
        out = run_chain([Dropper()], [("a", 1), ("b", 2), ("c", 4)], ctx)
        assert out == [("b", 2), ("c", 4)]

    def test_finish_can_emit(self, ctx):
        out = run_chain([Buffered()], [("a", 1), ("b", 2)], ctx)
        assert out == [("count", 2)]

    def test_order_preserved(self, ctx):
        records = [(i, i) for i in range(50)]
        assert run_chain([Doubler()], records, ctx) == [(i, 2 * i) for i in range(50)]


class TestChainName:
    def test_empty(self):
        assert chain_name([]) == "<empty>"

    def test_joins_names(self):
        assert chain_name([Doubler(), Dropper()]) == "Doubler -> Dropper"
