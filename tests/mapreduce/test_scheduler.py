"""Unit tests for the slot scheduler."""

import pytest

from repro.common.errors import SchedulingError
from repro.mapreduce.scheduler import SlotScheduler
from repro.simcluster.cluster import Cluster


@pytest.fixture
def cluster():
    return Cluster(num_nodes=3, map_slots_per_node=2, reduce_slots_per_node=1)


class TestConstruction:
    def test_map_slot_count(self, cluster):
        assert SlotScheduler(cluster, "map").num_slots == 6

    def test_reduce_slot_count(self, cluster):
        assert SlotScheduler(cluster, "reduce").num_slots == 3

    def test_rejects_unknown_kind(self, cluster):
        with pytest.raises(ValueError):
            SlotScheduler(cluster, "combine")

    def test_start_time_applied(self, cluster):
        sched = SlotScheduler(cluster, "map", start_time=10.0)
        assert all(s.available == 10.0 for s in sched.slots)


class TestAcquireCommit:
    def test_earliest_slot_wins(self, cluster):
        sched = SlotScheduler(cluster, "map")
        slot = sched.acquire()
        sched.commit(slot, 5.0)
        nxt = sched.acquire()
        assert nxt is not slot

    def test_commit_returns_start_end_wave(self, cluster):
        sched = SlotScheduler(cluster, "map")
        slot = sched.acquire()
        start, end, wave = sched.commit(slot, 2.5)
        assert (start, end, wave) == (0.0, 2.5, 0)

    def test_second_task_on_slot_is_wave_one(self, cluster):
        sched = SlotScheduler(cluster, "reduce")
        for _ in range(3):
            sched.commit(sched.acquire(), 1.0)
        _, _, wave = sched.commit(sched.acquire(), 1.0)
        assert wave == 1

    def test_negative_duration_rejected(self, cluster):
        sched = SlotScheduler(cluster, "map")
        with pytest.raises(SchedulingError):
            sched.commit(sched.acquire(), -1.0)

    def test_makespan(self, cluster):
        sched = SlotScheduler(cluster, "map")
        for d in (1.0, 2.0, 3.0):
            sched.commit(sched.acquire(), d)
        assert sched.makespan() == 3.0

    def test_makespan_floor(self, cluster):
        sched = SlotScheduler(cluster, "map", start_time=7.0)
        assert sched.makespan(floor=7.0) == 7.0


class TestLocality:
    def test_prefers_preferred_host_among_ties(self, cluster):
        sched = SlotScheduler(cluster, "map")
        slot = sched.acquire(preferred_hosts=["node02"])
        assert slot.host == "node02"

    def test_preference_ignored_when_host_busy(self, cluster):
        sched = SlotScheduler(cluster, "map")
        # Fill both slots of node02.
        for _ in range(2):
            s = sched.acquire(preferred_hosts=["node02"])
            assert s.host == "node02"
            sched.commit(s, 100.0)
        slot = sched.acquire(preferred_hosts=["node02"])
        assert slot.host != "node02"

    def test_allowed_hosts_hard_constraint(self, cluster):
        sched = SlotScheduler(cluster, "map")
        for _ in range(10):
            slot = sched.acquire(allowed_hosts=["node01"])
            assert slot.host == "node01"
            sched.commit(slot, 1.0)

    def test_unsatisfiable_constraint_raises(self, cluster):
        sched = SlotScheduler(cluster, "map")
        with pytest.raises(SchedulingError):
            sched.acquire(allowed_hosts=["node99"])

    def test_constraint_queues_rather_than_spills(self, cluster):
        sched = SlotScheduler(cluster, "map")
        ends = []
        for _ in range(4):
            slot = sched.acquire(allowed_hosts=["node00"])
            _, end, _ = sched.commit(slot, 1.0)
            ends.append(end)
        # node00 has 2 map slots -> 4 tasks take 2 waves.
        assert max(ends) == 2.0

    def test_locality_survives_float_noise_in_availability(self, cluster):
        # Regression: the earliest-available "front" used exact float
        # equality, so slots whose availability differed by accumulated
        # rounding noise fell out of the tie and lost the data-locality
        # preference.
        sched = SlotScheduler(cluster, "map")
        for slot in sched.slots:
            # Same logical time reached via different summation orders:
            # 0.1 + 0.2 == 0.30000000000000004, a hair *later* than 0.3.
            slot.available = 0.1 + 0.2 if slot.host == "node02" else 0.3
        slot = sched.acquire(preferred_hosts=["node02"])
        assert slot.host == "node02"

    def test_tolerance_does_not_merge_distinct_times(self, cluster):
        sched = SlotScheduler(cluster, "map")
        for slot in sched.slots:
            slot.available = 5.0 if slot.host == "node02" else 1.0
        slot = sched.acquire(preferred_hosts=["node02"])
        # node02 is genuinely later: the preference must NOT override
        # the earliest-available rule.
        assert slot.host != "node02"
