"""Integration tests for the job runner."""

import pytest

from repro.common.errors import DataFlowError
from repro.mapreduce.api import FnMapper, FnReducer, IdentityMapper
from repro.mapreduce.jobconf import JobConf
from repro.mapreduce.runtime import JobRunner


def wordcount_conf(**overrides):
    def tokenize(k, v):
        for w in v.split():
            yield (w, 1)

    def total(k, vs):
        yield (k, sum(vs))

    conf = JobConf(
        name="wc",
        input_paths=["/in"],
        output_path="/out",
        map_chain=[FnMapper(tokenize)],
        reducer=FnReducer(total),
        num_reduce_tasks=3,
    )
    for key, value in overrides.items():
        setattr(conf, key, value)
    return conf


@pytest.fixture
def loaded(cluster, dfs):
    filler = "pad" * 20
    records = [
        (i, f"alpha beta {'gamma' if i % 2 else 'delta'} {filler}{i}")
        for i in range(2000)
    ]
    dfs.write("/in", records)
    return JobRunner(cluster, dfs)


class TestMapReduceJob:
    def test_wordcount_counts(self, loaded, dfs):
        res = loaded.run(wordcount_conf())
        counts = dict(res.output)
        assert counts["alpha"] == 2000
        assert counts["gamma"] == 1000
        assert counts["delta"] == 1000

    def test_output_materialized(self, loaded, dfs):
        loaded.run(wordcount_conf())
        assert dict(dfs.read("/out"))["alpha"] == 2000

    def test_no_materialize(self, loaded, dfs):
        res = loaded.run(wordcount_conf(materialize_output=False))
        assert res.output and not dfs.exists("/out")

    def test_sim_time_positive_and_ordered(self, loaded):
        res = loaded.run(wordcount_conf())
        assert res.sim_time > 0
        assert res.end_time > res.map_phase_end > 0

    def test_start_time_offsets_everything(self, loaded):
        a = loaded.run(wordcount_conf())
        b = loaded.run(wordcount_conf(), start_time=100.0)
        assert b.end_time == pytest.approx(100.0 + a.end_time)

    def test_counters_aggregated(self, loaded):
        res = loaded.run(wordcount_conf())
        assert res.counters.get("task", "map_input_records") == 2000
        assert res.counters.get("task", "map_output_records") == 8000

    def test_task_runs_recorded(self, loaded):
        res = loaded.run(wordcount_conf())
        assert len(res.map_runs) >= 2
        assert len(res.reduce_runs) == 3
        for run in res.map_runs:
            assert run.duration > 0
            assert run.end >= run.start

    def test_reduce_partitions_distinct(self, loaded):
        res = loaded.run(wordcount_conf())
        assert sorted(r.partition for r in res.reduce_runs) == [0, 1, 2]


class TestMapOnlyJob:
    def test_map_only_output(self, loaded):
        conf = wordcount_conf(reducer=None, num_reduce_tasks=0)
        res = loaded.run(conf)
        assert len(res.output) == 8000
        assert not res.reduce_runs

    def test_map_only_no_buckets(self, loaded):
        conf = wordcount_conf(reducer=None, num_reduce_tasks=0)
        res = loaded.run(conf)
        assert all(not r.buckets for r in res.map_runs)


class TestValidation:
    def test_missing_input_rejected(self, loaded):
        with pytest.raises(DataFlowError):
            loaded.run(wordcount_conf(input_paths=[]))

    def test_reducer_without_tasks_rejected(self, loaded):
        with pytest.raises(DataFlowError):
            loaded.run(wordcount_conf(num_reduce_tasks=0))

    def test_unknown_input_path(self, loaded):
        with pytest.raises(DataFlowError):
            loaded.run(wordcount_conf(input_paths=["/missing"]))


class TestAbortHooks:
    def test_map_abort_surfaces_remaining(self, loaded):
        res = loaded.run(
            wordcount_conf(), abort_check_map=lambda runs, total: True
        )
        assert res.aborted_phase == "map"
        assert res.remaining_splits

    def test_map_abort_false_runs_to_completion(self, loaded):
        res = loaded.run(
            wordcount_conf(), abort_check_map=lambda runs, total: False
        )
        assert not res.aborted

    def test_reduce_abort_keeps_completed_output(self, loaded):
        calls = []

        def check(runs, total):
            calls.append((len(runs), total))
            return True

        res = loaded.run(
            wordcount_conf(num_reduce_tasks=12), abort_check_reduce=check
        )
        assert res.aborted_phase == "reduce"
        assert res.remaining_partitions
        assert calls and calls[0][1] == 12

    def test_abort_check_sees_first_wave_counts(self, loaded, cluster):
        seen = {}

        def check(runs, total):
            seen["runs"], seen["total"] = len(runs), total
            return False

        loaded.run(wordcount_conf(), abort_check_map=check)
        assert seen["runs"] == min(cluster.total_map_slots, seen["total"])


class TestReduceInputFor:
    def test_mismatched_bucket_count_is_clear_error(self, loaded):
        # Regression: a resumed job mixing map runs from plans with
        # different reduce-task counts used to die with a bare
        # IndexError deep in the shuffle.
        res = loaded.run(wordcount_conf(num_reduce_tasks=3))
        with pytest.raises(DataFlowError, match="shuffle buckets"):
            loaded.reduce_input_for(res.map_runs, 3)

    def test_valid_partition_still_served(self, loaded):
        res = loaded.run(wordcount_conf(num_reduce_tasks=3))
        records = loaded.reduce_input_for(res.map_runs, 2)
        assert records
        assert all(isinstance(r, tuple) for r in records)


class TestPerPartitionOutput:
    def test_part_files_written(self, loaded, dfs):
        conf = wordcount_conf(output_per_partition=True)
        res = loaded.run(conf)
        for p in range(3):
            path = JobRunner.partition_path("/out", p)
            assert dfs.exists(path)
        combined = []
        for p in range(3):
            combined.extend(dfs.read(JobRunner.partition_path("/out", p)))
        assert sorted(combined) == sorted(res.output)


class TestSideReduceInputs:
    def test_side_records_join_reduce(self, loaded):
        conf = wordcount_conf(side_reduce_inputs=[("alpha", 1)] * 50)
        res = loaded.run(conf)
        assert dict(res.output)["alpha"] == 2050

    def test_side_inputs_require_reducer(self, loaded):
        conf = wordcount_conf(
            reducer=None, num_reduce_tasks=0, side_reduce_inputs=[("a", 1)]
        )
        with pytest.raises(DataFlowError):
            loaded.run(conf)


class TestHostConstraint:
    def test_constraint_pins_map_tasks(self, cluster, dfs):
        dfs.write("/in", [(i, "x" * 50) for i in range(400)])
        conf = JobConf(
            name="pin",
            input_paths=["/in"],
            output_path="/out",
            map_chain=[IdentityMapper()],
            map_host_constraint=lambda idx: ["node00"],
        )
        res = JobRunner(cluster, dfs).run(conf)
        assert {r.node_host for r in res.map_runs} == {"node00"}

    def test_unconstrained_spreads(self, cluster, dfs):
        dfs.write("/in", [(i, "x" * 50) for i in range(2000)])
        conf = JobConf(
            name="spread",
            input_paths=["/in"],
            output_path="/out",
            map_chain=[IdentityMapper()],
        )
        res = JobRunner(cluster, dfs).run(conf)
        assert len({r.node_host for r in res.map_runs}) > 1
