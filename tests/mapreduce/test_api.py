"""Unit tests for the MapReduce user API."""

import pytest

from repro.mapreduce.api import (
    FnMapper,
    FnPartitioner,
    FnReducer,
    HashPartitioner,
    IdentityMapper,
    IdentityReducer,
    OutputCollector,
    TaskContext,
    stable_hash,
)
from repro.simcluster.cluster import Cluster
from repro.simcluster.timemodel import TimeModel


@pytest.fixture
def ctx():
    cluster = Cluster(num_nodes=2)
    return TaskContext(cluster.nodes[0], TimeModel(), task_id="t0")


class TestOutputCollector:
    def test_collect_appends(self):
        c = OutputCollector()
        c.collect("k", 1)
        c.collect("k2", 2)
        assert c.records == [("k", 1), ("k2", 2)]

    def test_tracks_bytes(self):
        c = OutputCollector()
        c.collect("ab", 1)
        assert c.bytes == 2 + 8


class TestTaskContext:
    def test_charge_accumulates(self, ctx):
        ctx.charge(0.5)
        ctx.charge(0.25)
        assert ctx.charged_time == 0.75

    def test_charge_rejects_negative(self, ctx):
        with pytest.raises(ValueError):
            ctx.charge(-1)

    def test_counters_start_empty(self, ctx):
        assert len(ctx.counters) == 0


class TestAdapters:
    def test_identity_mapper(self, ctx):
        c = OutputCollector()
        IdentityMapper().process("k", "v", c, ctx)
        assert c.records == [("k", "v")]

    def test_identity_reducer(self, ctx):
        c = OutputCollector()
        IdentityReducer().reduce("k", [1, 2], c, ctx)
        assert c.records == [("k", 1), ("k", 2)]

    def test_fn_mapper(self, ctx):
        m = FnMapper(lambda k, v: [(v, k)])
        c = OutputCollector()
        m.process(1, "a", c, ctx)
        assert c.records == [("a", 1)]

    def test_fn_reducer(self, ctx):
        r = FnReducer(lambda k, vs: [(k, sum(vs))])
        c = OutputCollector()
        r.reduce("k", [1, 2, 3], c, ctx)
        assert c.records == [("k", 6)]

    def test_fn_partitioner(self):
        p = FnPartitioner(lambda k, n: k % n)
        assert p.partition(7, 4) == 3


class TestStableHash:
    def test_deterministic_strings(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_nonnegative(self):
        for v in ("x", -5, 3.14, ("a", 1), None, [1, 2]):
            assert stable_hash(v) >= 0

    def test_distinguishes_values(self):
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash(("a", 1)) != stable_hash(("a", 2))

    def test_int_identity_like(self):
        assert stable_hash(42) == 42

    def test_bool(self):
        assert stable_hash(True) == 1


class TestHashPartitioner:
    def test_in_range(self):
        p = HashPartitioner()
        for key in range(200):
            assert 0 <= p.partition(key, 7) < 7

    def test_deterministic(self):
        p = HashPartitioner()
        assert p.partition("key", 5) == p.partition("key", 5)

    def test_spreads_keys(self):
        p = HashPartitioner()
        buckets = {p.partition(f"key{i}", 8) for i in range(100)}
        assert len(buckets) == 8
