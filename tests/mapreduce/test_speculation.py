"""Speculative execution: scheduler kill accounting, engine decisions,
and runner-level guarantees."""

import pytest

from repro.common.errors import SchedulingError
from repro.mapreduce.api import FnMapper, FnReducer
from repro.mapreduce.jobconf import JobConf
from repro.mapreduce.runtime import JobRunner
from repro.mapreduce.scheduler import SlotScheduler
from repro.mapreduce.speculation import (
    SpeculationConfig,
    SpeculationEngine,
)
from repro.simcluster.cluster import Cluster
from repro.simcluster.faults import FaultPlan, TaskCrash


@pytest.fixture
def sched():
    cluster = Cluster(num_nodes=3, map_slots_per_node=1, reduce_slots_per_node=1)
    return SlotScheduler(cluster, "map")


class TestConfig:
    def test_defaults_valid(self):
        cfg = SpeculationConfig()
        assert cfg.factor == 1.5 and cfg.only_winners

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"factor": 1.0},
            {"factor": 0.5},
            {"min_wave_tasks": 1},
            {"min_saving": -0.1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SpeculationConfig(**kwargs)


class TestSchedulerKill:
    def test_kill_frees_slot(self, sched):
        slot = sched.acquire()
        sched.commit(slot, 10.0)
        sched.kill(slot, 4.0)
        assert slot.available == 4.0
        assert sched.kills == 1

    def test_double_kill_raises(self, sched):
        slot = sched.acquire()
        sched.commit(slot, 10.0)
        sched.kill(slot, 4.0)
        with pytest.raises(SchedulingError):
            sched.kill(slot, 3.0)

    def test_kill_without_commit_raises(self, sched):
        with pytest.raises(SchedulingError):
            sched.kill(sched.slots[0], 0.0)

    def test_kill_outside_window_raises(self, sched):
        slot = sched.acquire()
        sched.commit(slot, 10.0)
        with pytest.raises(SchedulingError):
            sched.kill(slot, 11.0)
        slot2 = sched.acquire()
        sched.commit(slot2, 5.0)
        sched.commit(slot2, 5.0)  # second task: window is [5, 10]
        with pytest.raises(SchedulingError):
            sched.kill(slot2, 4.0)

    def test_kill_at_end_is_noop_rollback(self, sched):
        slot = sched.acquire()
        _, end, _ = sched.commit(slot, 10.0)
        sched.kill(slot, end)
        assert slot.available == end

    def test_commit_after_kill_rearms(self, sched):
        slot = sched.acquire()
        sched.commit(slot, 10.0)
        sched.kill(slot, 4.0)
        sched.commit(slot, 2.0)
        assert not slot.killed
        sched.kill(slot, 5.0)
        assert sched.kills == 2


class TestAcquireBackup:
    def test_excluded_hosts_skipped(self, sched):
        hosts = {s.host for s in sched.slots}
        slot = sched.acquire_backup(0.0, exclude_hosts=hosts - {"node02"})
        assert slot.host == "node02"

    def test_all_excluded_returns_none(self, sched):
        hosts = {s.host for s in sched.slots}
        assert sched.acquire_backup(0.0, exclude_hosts=hosts) is None

    def test_prefers_warm_host_on_tie(self, sched):
        slot = sched.acquire_backup(0.0, prefer_hosts=("node01",))
        assert slot.host == "node01"

    def test_ranks_by_effective_start(self, sched):
        # node00 free at 0 but the backup cannot start before 5; node01
        # free at 3 -> same effective start, tie broken by host order.
        for s in sched.slots:
            if s.host == "node01":
                sched.commit(s, 3.0)
            elif s.host == "node02":
                sched.commit(s, 9.0)
        slot = sched.acquire_backup(5.0, exclude_hosts=())
        assert slot.host == "node00"


class _Run:
    """Minimal stand-in for TaskRun with the fields the engine reads."""

    def __init__(self, task_id, slot, start, end, wave):
        self.task_id = task_id
        self.kind = "map"
        self.node_host = slot.host
        self.wave = wave
        self.start = start
        self.end = end
        self.duration = end - start


def _commit(sched, slot, duration):
    start, end, wave = sched.commit(slot, duration)
    return _Run(f"t-{slot.host}-{wave}", slot, start, end, wave)


def _engine(sched, backup_duration, **cfg):
    emitted = []
    engine = SpeculationEngine(
        SpeculationConfig(**cfg),
        sched,
        backup_duration=lambda run, host: backup_duration,
        emit=lambda run, host, idx, speculative=False: emitted.append(
            (run.task_id, host, speculative)
        ),
    )
    return engine, emitted


class TestEngine:
    def _straggled_wave(self, sched, slow=10.0, backup_duration=1.0, **cfg):
        """One wave: node00 runs a 10s straggler, peers take 1s."""
        engine, emitted = _engine(sched, backup_duration, **cfg)
        slots = {s.host: s for s in sched.slots}
        for host, dur in (("node00", slow), ("node01", 1.0), ("node02", 1.0)):
            run = _commit(sched, slots[host], dur)
            engine.observe(run, slots[host])
        counters = engine.finish()
        return engine, emitted, counters, slots

    def test_backup_wins_and_primary_killed(self, sched):
        engine, emitted, counters, slots = self._straggled_wave(sched)
        spec = counters.group("spec")
        assert spec["candidates"] == 1
        assert spec["backups_launched"] == 1
        assert spec["backups_won"] == 1
        assert spec["primaries_killed"] == 1
        assert spec["saved_seconds"] > 0
        # Primary slot rolled back to the backup's finish.
        assert slots["node00"].killed
        assert slots["node00"].available < 10.0
        # The winner was emitted exactly once, speculatively, and every
        # logical task was emitted exactly once overall.
        assert sorted(t for t, _, _ in emitted) == [
            "t-node00-0",
            "t-node01-0",
            "t-node02-0",
        ]
        spec_emits = [(t, h) for t, h, s in emitted if s]
        assert len(spec_emits) == 1 and spec_emits[0][0] == "t-node00-0"

    def test_backup_decision_time_gates_start(self, sched):
        engine, emitted, counters, _ = self._straggled_wave(sched)
        event = engine.events[0]
        assert event["won"] and event["primary_host"] == "node00"
        # decision at start + 1.5 x median(1) = 1.5; backup runs 1s.
        assert event["saved"] == pytest.approx(10.0 - 2.5)

    def test_only_winners_skips_losing_backup(self, sched):
        _, _, counters, _ = self._straggled_wave(sched, backup_duration=20.0)
        spec = counters.group("spec")
        assert spec["candidates"] == 1
        assert spec.get("backups_launched", 0) == 0
        assert spec["backups_skipped"] == 1

    def test_eager_mode_kills_losing_backup(self, sched):
        engine, emitted, counters, slots = self._straggled_wave(
            sched, backup_duration=20.0, only_winners=False
        )
        spec = counters.group("spec")
        assert spec["backups_launched"] == 1
        assert spec["backups_lost"] == 1
        assert spec.get("backups_won", 0) == 0
        assert spec["wasted_seconds"] > 0
        assert sched.kills == 1
        # The losing backup's slot was rolled back to the primary's end.
        backup_host = engine.events[0]["backup_host"]
        assert slots[backup_host].available == 10.0
        # No speculative emit: the primary won.
        assert not any(s for _, _, s in emitted)

    def test_min_saving_floor(self, sched):
        _, _, counters, _ = self._straggled_wave(sched, min_saving=100.0)
        assert counters.group("spec").get("backups_launched", 0) == 0

    def test_small_wave_not_speculated(self, sched):
        engine, emitted = _engine(sched, 1.0, min_wave_tasks=3)
        slots = [s for s in sched.slots]
        run = _commit(sched, slots[0], 10.0)
        engine.observe(run, slots[0])
        run2 = _commit(sched, slots[1], 1.0)
        engine.observe(run2, slots[1])
        counters = engine.finish()
        assert counters.get("spec", "candidates") == 0
        assert len(emitted) == 2

    def test_passthrough_never_speculates(self, sched):
        engine, emitted = _engine(sched, 1.0)
        slots = {s.host: s for s in sched.slots}
        for host, dur in (("node00", 10.0), ("node01", 1.0), ("node02", 1.0)):
            run = _commit(sched, slots[host], dur)
            engine.passthrough(run, slots[host])
        counters = engine.finish()
        assert counters.get("spec", "candidates") == 0
        assert len(emitted) == 3

    def test_superseded_primary_not_killed(self, sched):
        """Regression: a straggler whose slot already ran a later task
        (crash-retry or next wave) must not be rolled back."""
        engine, emitted = _engine(sched, 1.0)
        slots = {s.host: s for s in sched.slots}
        run = _commit(sched, slots["node00"], 10.0)
        engine.observe(run, slots["node00"])
        for host in ("node01", "node02"):
            peer = _commit(sched, slots[host], 1.0)
            engine.observe(peer, slots[host])
        # A later task reuses the straggler's slot before sealing.
        _commit(sched, slots["node00"], 2.0)
        counters = engine.finish()
        spec = counters.group("spec")
        assert spec["primary_superseded"] == 1
        assert spec.get("backups_launched", 0) == 0
        assert sched.kills == 0
        assert slots["node00"].available == 12.0


def wordcount_conf(**overrides):
    def tokenize(k, v):
        for w in v.split():
            yield (w, 1)

    def total(k, vs):
        yield (k, sum(vs))

    conf = JobConf(
        name="wc-spec",
        input_paths=["/in"],
        output_path="/out",
        map_chain=[FnMapper(tokenize)],
        reducer=FnReducer(total),
        num_reduce_tasks=3,
        materialize_output=False,
    )
    for key, value in overrides.items():
        setattr(conf, key, value)
    return conf


@pytest.fixture
def loaded(cluster, dfs):
    filler = "pad" * 20
    records = [
        (i, f"alpha beta {'gamma' if i % 2 else 'delta'} {filler}{i}")
        for i in range(2000)
    ]
    dfs.write("/in", records)
    return cluster, dfs


def _run(cluster, dfs, fault_plan=None, speculation=None):
    runner = JobRunner(
        cluster, dfs, fault_plan=fault_plan, speculation=speculation
    )
    return runner.run(wordcount_conf())


class TestRunnerIntegration:
    def test_slow_host_run_is_faster_with_speculation(self, loaded):
        cluster, dfs = loaded
        plan = lambda: FaultPlan(seed=3, straggler_factors={"node01": 4.0})
        off = _run(cluster, dfs, fault_plan=plan())
        on = _run(
            cluster, dfs, fault_plan=plan(), speculation=SpeculationConfig()
        )
        assert on.sim_time < off.sim_time
        assert on.counters.get("spec", "backups_won") > 0
        assert dict(on.output) == dict(off.output)

    def test_clean_run_pays_nothing(self, loaded):
        cluster, dfs = loaded
        off = _run(cluster, dfs)
        on = _run(cluster, dfs, speculation=SpeculationConfig())
        assert on.sim_time == off.sim_time
        assert not on.counters.group("spec")

    def test_placement_invariance(self, loaded):
        """Primary tasks run exactly where and when they would without
        speculation; only killed tails and backups differ."""
        cluster, dfs = loaded
        plan = lambda: FaultPlan(seed=3, straggler_factors={"node01": 4.0})
        off = _run(cluster, dfs, fault_plan=plan())
        on = _run(
            cluster, dfs, fault_plan=plan(), speculation=SpeculationConfig()
        )
        moved = 0
        off_maps = {r.task_id: r for r in off.map_runs}
        on_maps = {r.task_id: r for r in on.map_runs}
        assert set(off_maps) == set(on_maps)
        for task_id, a in off_maps.items():
            b = on_maps[task_id]
            if b.node_host == a.node_host:
                assert (b.start, b.end) == (a.start, a.end)
            else:
                moved += 1
                assert b.end < a.end  # a backup only wins by finishing first
        # The reduce phase starts at map-end, which map backups move;
        # placement is invariant relative to the phase start.
        off_reds = {r.task_id: r for r in off.reduce_runs}
        on_reds = {r.task_id: r for r in on.reduce_runs}
        assert set(off_reds) == set(on_reds)
        for task_id, a in off_reds.items():
            b = on_reds[task_id]
            if b.node_host == a.node_host:
                assert b.start - on.map_phase_end == pytest.approx(
                    a.start - off.map_phase_end
                )
                assert b.duration == pytest.approx(a.duration)
            else:
                moved += 1
        assert moved == on.counters.get("spec", "backups_won")

    def test_crash_retry_and_speculation_coexist(self, loaded):
        """Regression for the kill/retry interplay: a crash-retried task
        and speculative kills in the same run must leave every task
        completed exactly once and the outputs untouched."""
        cluster, dfs = loaded

        def plan():
            return FaultPlan(
                seed=5,
                straggler_factors={"node01": 4.0},
                task_crashes=[TaskCrash("wc-spec-m0000", after_records=5)],
            )

        off = _run(cluster, dfs, fault_plan=plan())
        on = _run(
            cluster, dfs, fault_plan=plan(), speculation=SpeculationConfig()
        )
        assert dict(on.output) == dict(off.output)
        assert on.counters.get("fault", "tasks_retried") == off.counters.get(
            "fault", "tasks_retried"
        )
        task_ids = [r.task_id for r in on.map_runs + on.reduce_runs]
        assert len(task_ids) == len(set(task_ids))
        assert on.sim_time <= off.sim_time

    def test_eager_mode_output_identical(self, loaded):
        cluster, dfs = loaded
        plan = lambda: FaultPlan(seed=3, straggler_factors={"node01": 4.0})
        off = _run(cluster, dfs, fault_plan=plan())
        on = _run(
            cluster,
            dfs,
            fault_plan=plan(),
            speculation=SpeculationConfig(only_winners=False),
        )
        assert dict(on.output) == dict(off.output)
        spec = on.counters.group("spec")
        assert spec["backups_launched"] == spec.get(
            "backups_won", 0
        ) + spec.get("backups_lost", 0)
