"""Unit tests for the shuffle helpers."""

from repro.mapreduce.api import HashPartitioner
from repro.mapreduce.shuffle import bucket_bytes, group_by_key, partition_records


class TestPartitionRecords:
    def test_every_record_lands_somewhere(self):
        records = [(i, i) for i in range(100)]
        buckets = partition_records(records, HashPartitioner(), 4)
        assert sum(len(b) for b in buckets) == 100

    def test_same_key_same_bucket(self):
        records = [("k", i) for i in range(10)]
        buckets = partition_records(records, HashPartitioner(), 5)
        non_empty = [b for b in buckets if b]
        assert len(non_empty) == 1
        assert len(non_empty[0]) == 10

    def test_single_partition(self):
        records = [(i, i) for i in range(10)]
        buckets = partition_records(records, HashPartitioner(), 1)
        assert len(buckets) == 1 and len(buckets[0]) == 10

    def test_empty_input(self):
        assert partition_records([], HashPartitioner(), 3) == [[], [], []]


class TestGroupByKey:
    def test_groups_values(self):
        groups = dict(group_by_key([("a", 1), ("b", 2), ("a", 3)]))
        assert groups == {"a": [1, 3], "b": [2]}

    def test_sorted_when_comparable(self):
        groups = group_by_key([("b", 1), ("a", 2), ("c", 3)])
        assert [k for k, _ in groups] == ["a", "b", "c"]

    def test_value_order_preserved_within_group(self):
        groups = dict(group_by_key([("a", 3), ("a", 1), ("a", 2)]))
        assert groups["a"] == [3, 1, 2]

    def test_uncomparable_keys_fall_back_to_first_seen(self):
        records = [(("t", 1), "x"), (5, "y"), (("t", 1), "z")]
        groups = group_by_key(records)
        assert dict(groups) == {("t", 1): ["x", "z"], 5: ["y"]}

    def test_empty(self):
        assert group_by_key([]) == []


class TestBucketBytes:
    def test_zero_for_empty(self):
        assert bucket_bytes([]) == 0

    def test_counts_pairs(self):
        assert bucket_bytes([("ab", 1)]) == 2 + 8
