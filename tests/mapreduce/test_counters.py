"""Unit tests for counters."""

from repro.mapreduce.counters import Counters


class TestIncrement:
    def test_starts_at_zero(self):
        c = Counters()
        assert c.get("g", "n") == 0.0

    def test_increment_default_one(self):
        c = Counters()
        c.increment("g", "n")
        c.increment("g", "n")
        assert c.get("g", "n") == 2.0

    def test_increment_amount(self):
        c = Counters()
        c.increment("g", "bytes", 100)
        c.increment("g", "bytes", 50)
        assert c.get("g", "bytes") == 150.0

    def test_set_overwrites(self):
        c = Counters()
        c.increment("g", "n", 5)
        c.set("g", "n", 2)
        assert c.get("g", "n") == 2.0

    def test_groups_isolated(self):
        c = Counters()
        c.increment("a", "n")
        c.increment("b", "n", 3)
        assert c.get("a", "n") == 1.0
        assert c.get("b", "n") == 3.0


class TestMerge:
    def test_merge_adds(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 1)
        b.increment("g", "n", 2)
        b.increment("g", "m", 5)
        a.merge(b)
        assert a.get("g", "n") == 3.0
        assert a.get("g", "m") == 5.0

    def test_merge_leaves_source_unchanged(self):
        a, b = Counters(), Counters()
        b.increment("g", "n", 2)
        a.merge(b)
        assert b.get("g", "n") == 2.0

    def test_copy_is_independent(self):
        a = Counters()
        a.increment("g", "n")
        b = a.copy()
        b.increment("g", "n")
        assert a.get("g", "n") == 1.0
        assert b.get("g", "n") == 2.0


class TestGaugeMerge:
    def test_merge_overwrites_set_keys(self):
        # Regression: a key written with set() used to be *added* on
        # merge, silently doubling gauges folded into global totals.
        a, b = Counters(), Counters()
        a.set("g", "hwm", 5)
        b.set("g", "hwm", 7)
        a.merge(b)
        assert a.get("g", "hwm") == 7.0

    def test_merge_gauge_into_empty(self):
        a, b = Counters(), Counters()
        b.set("g", "hwm", 3)
        a.merge(b)
        assert a.get("g", "hwm") == 3.0
        assert a.is_gauge("g", "hwm")

    def test_merge_still_adds_incremented_keys(self):
        a, b = Counters(), Counters()
        a.increment("g", "n", 1)
        b.increment("g", "n", 2)
        a.merge(b)
        assert a.get("g", "n") == 3.0
        assert not a.is_gauge("g", "n")

    def test_increment_clears_gauge(self):
        c = Counters()
        c.set("g", "n", 5)
        c.increment("g", "n", 1)
        assert c.get("g", "n") == 6.0
        assert not c.is_gauge("g", "n")

    def test_copy_preserves_gauge_values(self):
        a = Counters()
        a.set("g", "hwm", 4)
        a.increment("g", "n", 2)
        b = a.copy()
        assert b.get("g", "hwm") == 4.0
        assert b.get("g", "n") == 2.0
        assert b.is_gauge("g", "hwm")

    def test_chained_merge_of_gauges(self):
        total = Counters()
        for value in (1.0, 9.0, 4.0):
            task = Counters()
            task.set("mem", "peak", value)
            total.merge(task)
        assert total.get("mem", "peak") == 4.0  # last writer, not 14

    def test_to_dict_snapshot_is_deep(self):
        c = Counters()
        c.increment("g", "n")
        snap = c.to_dict()
        snap["g"]["n"] = 99
        assert c.get("g", "n") == 1.0


class TestIntrospection:
    def test_items_iterates_all(self):
        c = Counters()
        c.increment("a", "x", 1)
        c.increment("b", "y", 2)
        assert sorted(c.items()) == [("a", "x", 1.0), ("b", "y", 2.0)]

    def test_len(self):
        c = Counters()
        c.increment("a", "x")
        c.increment("a", "y")
        c.increment("b", "x")
        assert len(c) == 3

    def test_group_view_is_copy(self):
        c = Counters()
        c.increment("g", "n")
        view = c.group("g")
        view["n"] = 99
        assert c.get("g", "n") == 1.0
