"""Tests for map-side combiner support."""

import pytest

from repro.common.errors import DataFlowError
from repro.mapreduce.api import FnMapper, FnReducer
from repro.mapreduce.jobconf import JobConf
from repro.mapreduce.runtime import JobRunner


def tokenize(k, v):
    for w in v.split():
        yield (w, 1)


def total(k, vs):
    yield (k, sum(vs))


def wc_conf(**overrides):
    conf = JobConf(
        name="wc-comb",
        input_paths=["/in"],
        output_path="/out",
        map_chain=[FnMapper(tokenize)],
        reducer=FnReducer(total),
        num_reduce_tasks=3,
    )
    for key, value in overrides.items():
        setattr(conf, key, value)
    return conf


@pytest.fixture
def loaded(cluster, dfs):
    records = [(i, "alpha beta alpha gamma alpha") for i in range(1500)]
    dfs.write("/in", records)
    return JobRunner(cluster, dfs)


class TestCombiner:
    def test_same_answer_with_combiner(self, loaded):
        plain = loaded.run(wc_conf())
        combined = loaded.run(wc_conf(combiner=FnReducer(total)))
        assert sorted(plain.output) == sorted(combined.output)
        assert dict(combined.output)["alpha"] == 4500

    def test_combiner_shrinks_shuffle(self, loaded):
        plain = loaded.run(wc_conf())
        combined = loaded.run(wc_conf(combiner=FnReducer(total)))
        plain_in = plain.counters.get("task", "reduce_input_records")
        comb_in = combined.counters.get("task", "reduce_input_records")
        assert comb_in < plain_in / 10

    def test_combiner_counters(self, loaded):
        res = loaded.run(wc_conf(combiner=FnReducer(total)))
        assert res.counters.get("task", "combine_input_records") == 1500 * 5
        assert res.counters.get("task", "combine_output_records") < 1500 * 5

    def test_combiner_reduces_sim_time(self, loaded):
        plain = loaded.run(wc_conf())
        combined = loaded.run(wc_conf(combiner=FnReducer(total)))
        # less shuffle transfer + merge work than it costs to combine
        assert combined.sim_time <= plain.sim_time * 1.05

    def test_combiner_requires_reducer(self, loaded):
        conf = wc_conf(
            reducer=None, num_reduce_tasks=0, combiner=FnReducer(total)
        )
        with pytest.raises(DataFlowError):
            loaded.run(conf)

    def test_non_idempotent_friendly_combiner_semantics(self, loaded):
        """The combiner runs on map-local groups only; a max() combiner
        (idempotent, associative) is also exact."""

        def peak(k, vs):
            yield (k, max(vs))

        def emit_val(k, v):
            for i, w in enumerate(v.split()):
                yield (w, i)

        plain = loaded.run(
            wc_conf(map_chain=[FnMapper(emit_val)], reducer=FnReducer(peak))
        )
        combined = loaded.run(
            wc_conf(
                map_chain=[FnMapper(emit_val)],
                reducer=FnReducer(peak),
                combiner=FnReducer(peak),
            )
        )
        assert sorted(plain.output) == sorted(combined.output)
