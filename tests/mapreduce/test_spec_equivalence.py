"""Differential scheduler-equivalence suite.

Speculative execution and replica-aware routing are *timing-layer*
features: they may re-place work on the simulated clock but must never
change what a job computes or how the data-path counters add up. This
suite pins that down differentially: every strategy x batch size x
fault plan combination runs twice -- speculation (or routing) off and
on -- from identical fresh environments with identical job names (so
seeded fault decisions replay exactly), and the pairs must agree on

* the output, in exact order, bit for bit;
* every counter outside the ``spec.*`` / ``route.*`` groups;
* the simulated time, except that speculation may only ever *lower* it.
"""

import random

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.costmodel import Strategy
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from repro.simcluster.cluster import Cluster
from repro.simcluster.faults import FaultPlan, RetryPolicy, TaskCrash

STRATEGIES = {
    "Base": Strategy.BASELINE,
    "Cache": Strategy.CACHE,
    "Repart": Strategy.REPART,
    "Idxloc": Strategy.IDXLOC,
}
BATCH_SIZES = (1, 64)

RETRY_POLICY = RetryPolicy(
    max_attempts=5,
    base_backoff=2e-3,
    backoff_multiplier=2.0,
    max_backoff=0.05,
    jitter=0.5,
    attempt_timeout=10e-3,
)

#: name -> FaultPlan factory (None = clean run). ``slow`` is the
#: speculation headline (one x4 host); ``mixed`` stacks lookup faults,
#: a dead host, a task crash, and two stragglers so the kill/retry
#: interplay is exercised in one run.
FAULT_PLANS = {
    "clean": lambda name: None,
    "slow": lambda name: FaultPlan(
        seed=11, straggler_factors={"node02": 4.0}
    ),
    "mixed": lambda name: FaultPlan(
        seed=13,
        lookup_failure_rate=0.03,
        lookup_timeout_rate=0.01,
        dead_hosts=("node04",),
        straggler_factors={"node02": 4.0, "node05": 2.0},
        task_crashes=[TaskCrash(f"{name}/main-m0001", after_records=3)],
    ),
}


class FanoutCityOperator(IndexOperator):
    """(user, payload) -> one record per city of the user; missing
    users fan out to a 'missing' bucket, so wrong lookup results would
    change the output, not just the clock."""

    def pre_process(self, key, value, index_input):
        user, payload = value
        index_input.put(0, user)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        if not cities:
            collector.collect("missing", value)
        for city in cities:
            collector.collect(city, value)


@pytest.fixture(scope="module")
def workload():
    rng = random.Random(20140612)
    num_users, num_records = 140, 1600
    records = []
    for i in range(num_records):
        if rng.random() < 0.15:
            user = f"ghost{rng.randrange(30):03d}"
        else:
            user = f"user{int(num_users * rng.random() ** 2.2):03d}"
        records.append((i, (user, "x" * 24)))

    def build(cluster):
        kv = DistributedKVStore("spec-eq-users", cluster, service_time=4e-3)
        for u in range(num_users):
            kv.put(f"user{u:03d}", f"city{u % 10:02d}")
            if u % 4 == 0:
                kv.put(f"user{u:03d}", f"city{(u + 3) % 10:02d}")
        return kv

    return records, build


def fresh_env(workload, plan_name: str, job_name: str):
    records, build = workload
    cluster = Cluster(num_nodes=7, map_slots_per_node=2, reduce_slots_per_node=2)
    dfs = DistributedFileSystem(cluster, block_size=8 * 1024)
    dfs.write("/in/speceq", records)
    kv = build(cluster)
    plan = FAULT_PLANS[plan_name](job_name)
    if plan is not None and (
        plan_name == "mixed"
    ):  # only the mixed plan injects lookup faults
        kv.set_fault_plan(plan, RETRY_POLICY)

    def make_job():
        job = IndexJobConf(job_name)
        job.set_input_paths("/in/speceq").set_output_path(f"/out/{job_name}")
        job.add_head_index_operator(
            FanoutCityOperator("head-op").add_index(IndexAccessor(kv))
        )
        job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
        job.set_reducer(
            FnReducer(lambda k, vs: [(k, len(vs))], "count"), num_reduce_tasks=4
        )
        return job

    return cluster, dfs, make_job, plan


def run_one(
    workload,
    mode: str,
    batch_size: int,
    plan_name: str,
    speculation_factor=None,
    route_policy=None,
):
    # Off and on runs share the job name so seeded fault decisions
    # replay identically; everything else is rebuilt from scratch.
    job_name = f"speceq-{mode}-b{batch_size}-{plan_name}"
    cluster, dfs, make_job, plan = fresh_env(workload, plan_name, job_name)
    runner = EFindRunner(
        cluster,
        dfs,
        fault_plan=plan,
        batch_size=batch_size,
        speculation_factor=speculation_factor,
        route_policy=route_policy,
    )
    return runner.run(
        make_job(),
        mode="forced",
        forced_strategy=STRATEGIES[mode],
        extra_job_targets=["head-op"],
    )


def comparable_counters(result) -> dict:
    """Every counter group except the timing-layer ones under test."""
    groups = result.counters.to_dict()
    groups.pop("spec", None)
    groups.pop("route", None)
    return groups


@pytest.mark.parametrize("plan_name", list(FAULT_PLANS))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("mode", list(STRATEGIES))
def test_speculation_differential(workload, mode, batch_size, plan_name):
    off = run_one(workload, mode, batch_size, plan_name)
    on = run_one(
        workload, mode, batch_size, plan_name, speculation_factor=1.5
    )

    assert list(on.output) == list(off.output)  # exact order, not sorted
    assert comparable_counters(on) == comparable_counters(off)
    assert not off.counters.group("spec")

    spec = on.counters.group("spec")
    if spec.get("backups_won", 0):
        assert on.sim_time < off.sim_time
    else:
        assert on.sim_time == off.sim_time
    if plan_name == "clean":
        # Uniform waves: speculation must not even find a candidate
        # worth backing up, let alone change the clock.
        assert spec.get("backups_launched", 0) == 0
        assert on.sim_time == off.sim_time
    launched = spec.get("backups_launched", 0)
    assert launched == spec.get("backups_won", 0) + spec.get(
        "backups_lost", 0
    )
    if plan_name == "mixed":
        # The crash must really have fired (and been retried) in both.
        assert off.counters.get("fault", "tasks_retried") > 0


@pytest.mark.parametrize("plan_name", ["clean", "mixed"])
@pytest.mark.parametrize("mode", list(STRATEGIES))
def test_routing_differential(workload, mode, plan_name):
    """Replica routing is bookkeeping only: identical output order,
    identical non-``route.*`` counters, and the *exact* simulated time."""
    off = run_one(workload, mode, 64, plan_name)
    on = run_one(
        workload, mode, 64, plan_name, route_policy="least-loaded"
    )

    assert list(on.output) == list(off.output)
    assert comparable_counters(on) == comparable_counters(off)
    assert on.sim_time == off.sim_time
    route = on.counters.group("route")
    assert route.get("keys", 0) > 0
    assert route.get("batches", 0) > 0


@pytest.mark.parametrize("mode", list(STRATEGIES))
def test_speculation_and_routing_compose(workload, mode):
    off = run_one(workload, mode, 64, "slow")
    on = run_one(
        workload,
        mode,
        64,
        "slow",
        speculation_factor=1.5,
        route_policy="least-loaded",
    )
    assert list(on.output) == list(off.output)
    assert comparable_counters(on) == comparable_counters(off)
    assert on.sim_time <= off.sim_time


def test_fixed_policy_routes_like_no_router(workload):
    off = run_one(workload, "Cache", 64, "clean")
    on = run_one(workload, "Cache", 64, "clean", route_policy="fixed")
    assert list(on.output) == list(off.output)
    assert on.sim_time == off.sim_time
    assert comparable_counters(on) == comparable_counters(off)
