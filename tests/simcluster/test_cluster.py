"""Unit tests for the simulated cluster."""

import pytest

from repro.simcluster.cluster import Cluster


class TestConstruction:
    def test_default_matches_paper(self):
        c = Cluster()
        assert c.num_nodes == 12
        assert c.total_map_slots == 12 * 8
        assert c.total_reduce_slots == 12 * 4

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            Cluster(num_nodes=0)

    def test_hostnames_unique(self):
        c = Cluster(num_nodes=5)
        hosts = {n.hostname for n in c.nodes}
        assert len(hosts) == 5


class TestLookup:
    def test_node_by_index_wraps(self):
        c = Cluster(num_nodes=3)
        assert c.node(4) is c.nodes[1]

    def test_node_by_host(self):
        c = Cluster(num_nodes=3)
        assert c.node_by_host("node01") is c.nodes[1]
        assert c.node_by_host("nosuch") is None


class TestReplicaPlacement:
    def test_replicas_distinct_nodes(self):
        c = Cluster(num_nodes=6)
        nodes = c.replica_nodes(block_index=2, replication=3)
        assert len({n.node_id for n in nodes}) == 3

    def test_replication_capped_at_cluster_size(self):
        c = Cluster(num_nodes=2)
        assert len(c.replica_nodes(0, replication=3)) == 2

    def test_deterministic(self):
        c = Cluster(num_nodes=6)
        assert [n.node_id for n in c.replica_nodes(3, 3)] == [
            n.node_id for n in c.replica_nodes(3, 3)
        ]

    def test_spread_across_blocks(self):
        c = Cluster(num_nodes=6)
        firsts = {c.replica_nodes(i, 3)[0].node_id for i in range(12)}
        assert len(firsts) > 1
