"""Unit tests for the fault-injection and retry layer."""

import pytest

from repro.common.errors import (
    DataFlowError,
    IndexLookupError,
    SchedulingError,
    TransientLookupError,
)
from repro.indices.base import MappingIndex
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer, TaskContext
from repro.mapreduce.jobconf import JobConf
from repro.mapreduce.runtime import JobRunner
from repro.mapreduce.scheduler import SlotScheduler
from repro.simcluster.faults import (
    FaultPlan,
    PartitionOutage,
    RetryPolicy,
    TaskCrash,
)


def find_key(plan, index_name, predicate, limit=5000):
    """First key k0..k4999 whose per-attempt fault verdicts satisfy
    ``predicate(verdicts)`` -- the deterministic draws make this a
    stable choice, not a flaky search."""
    for i in range(limit):
        key = f"k{i}"
        verdicts = tuple(
            plan.lookup_fault(index_name, key, a) for a in range(4)
        )
        if predicate(verdicts):
            return key
    raise AssertionError("no key with the wanted fault pattern in range")


def make_ctx(cluster, task_id="t"):
    return TaskContext(cluster.nodes[0], cluster.time_model, task_id=task_id)


# ----------------------------------------------------------------------
# FaultPlan determinism
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_lookup_fault_deterministic(self):
        a = FaultPlan(seed=7, lookup_failure_rate=0.3, lookup_timeout_rate=0.2)
        b = FaultPlan(seed=7, lookup_failure_rate=0.3, lookup_timeout_rate=0.2)
        verdicts = [a.lookup_fault("idx", f"k{i}", 0) for i in range(200)]
        assert verdicts == [b.lookup_fault("idx", f"k{i}", 0) for i in range(200)]
        assert "error" in verdicts and "timeout" in verdicts and None in verdicts

    def test_order_independent(self):
        plan = FaultPlan(seed=7, lookup_failure_rate=0.3)
        forward = [plan.lookup_fault("idx", f"k{i}", 0) for i in range(50)]
        backward = [
            plan.lookup_fault("idx", f"k{i}", 0) for i in reversed(range(50))
        ]
        assert forward == list(reversed(backward))

    def test_seed_and_attempt_redraw(self):
        base = FaultPlan(seed=1, lookup_failure_rate=0.5)
        other = FaultPlan(seed=2, lookup_failure_rate=0.5)
        v_base = [base.lookup_fault("idx", f"k{i}", 0) for i in range(100)]
        assert v_base != [other.lookup_fault("idx", f"k{i}", 0) for i in range(100)]
        assert v_base != [base.lookup_fault("idx", f"k{i}", 1) for i in range(100)]

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(lookup_failure_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(lookup_failure_rate=0.6, lookup_timeout_rate=0.5)

    def test_straggler_factors(self):
        plan = FaultPlan(straggler_factors={"node01": 2.5})
        assert plan.straggler_factor("node01") == 2.5
        assert plan.straggler_factor("node00") == 1.0
        with pytest.raises(ValueError):
            FaultPlan(straggler_factors={"node01": 0.5})

    def test_partition_outage_window(self):
        plan = FaultPlan(
            partition_outages=[PartitionOutage("idx", 3, first_probe=0, last_probe=1)]
        )
        # Two probes down, then the window lifts.
        assert plan.partition_probe("idx", 3) is True
        assert plan.partition_probe("idx", 3) is True
        assert plan.partition_probe("idx", 3) is False
        # Other partitions and indices are untouched.
        assert plan.partition_probe("idx", 2) is False
        assert plan.partition_probe("other", 3) is False

    def test_permanent_outage(self):
        plan = FaultPlan(partition_outages=[PartitionOutage("idx", 0)])
        assert all(plan.partition_probe("idx", 0) for _ in range(10))

    def test_task_crash_attempts(self):
        plan = FaultPlan(task_crashes=[TaskCrash("wc-m0001", 25, attempts=2)])
        assert plan.task_crash("wc-m0001", 0) == 25
        assert plan.task_crash("wc-m0001", 1) == 25
        assert plan.task_crash("wc-m0001", 2) is None
        assert plan.task_crash("wc-m0002", 0) is None


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff=0.1, backoff_multiplier=2.0, max_backoff=0.5)
        assert policy.nominal_backoff(1) == pytest.approx(0.1)
        assert policy.nominal_backoff(2) == pytest.approx(0.2)
        assert policy.nominal_backoff(3) == pytest.approx(0.4)
        assert policy.nominal_backoff(4) == pytest.approx(0.5)

    def test_jittered_backoff_bounded_and_deterministic(self):
        policy = RetryPolicy(base_backoff=0.1, jitter=0.5)
        plan = FaultPlan(seed=11)
        times = [plan.backoff_time(policy, "idx", f"k{i}", 1) for i in range(100)]
        assert times == [
            plan.backoff_time(policy, "idx", f"k{i}", 1) for i in range(100)
        ]
        assert all(0.05 <= t <= 0.15 for t in times)
        assert len(set(times)) > 1

    def test_zero_jitter_is_nominal(self):
        policy = RetryPolicy(base_backoff=0.1, jitter=0.0)
        assert FaultPlan().backoff_time(policy, "idx", "k", 2) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_backoff=-1.0)


# ----------------------------------------------------------------------
# IndexService retry loop
# ----------------------------------------------------------------------
class TestIndexRetry:
    POLICY = RetryPolicy(
        max_attempts=4, base_backoff=0.01, max_backoff=0.1, attempt_timeout=0.05
    )

    def make_index(self, plan, keys):
        index = MappingIndex("m", {k: f"v-{k}" for k in keys}, service_time=1e-3)
        return index.set_fault_plan(plan, self.POLICY)

    def test_no_plan_is_single_attempt(self, cluster):
        index = MappingIndex("m", {"a": 1})
        ctx = make_ctx(cluster)
        assert index.lookup("a", ctx) == [1]
        assert ctx.charged_time == 0.0
        assert index.lookups_retried == 0

    def test_retry_then_succeed(self, cluster):
        plan = FaultPlan(seed=3, lookup_failure_rate=0.5)
        key = find_key(
            plan, "m", lambda v: v[0] == "error" and v[1] is None
        )
        index = self.make_index(plan, [key])
        ctx = make_ctx(cluster)
        assert index.lookup(key, ctx) == [f"v-{key}"]
        assert index.lookups_retried == 1
        assert index.lookups_failed == 0
        assert ctx.counters.get("fault", "lookups_retried") == 1
        # Failed attempt's service time + the backoff before the retry.
        expected = index.service_time() + plan.backoff_time(
            self.POLICY, "m", key, 1
        )
        assert ctx.charged_time == pytest.approx(expected)

    def test_timeout_charges_attempt_timeout(self, cluster):
        plan = FaultPlan(seed=3, lookup_timeout_rate=0.5)
        key = find_key(
            plan, "m", lambda v: v[0] == "timeout" and v[1] is None
        )
        index = self.make_index(plan, [key])
        ctx = make_ctx(cluster)
        assert index.lookup(key, ctx) == [f"v-{key}"]
        expected = self.POLICY.attempt_timeout + plan.backoff_time(
            self.POLICY, "m", key, 1
        )
        assert ctx.charged_time == pytest.approx(expected)

    def test_exhausted_retries_terminal(self, cluster):
        plan = FaultPlan(seed=3, lookup_failure_rate=1.0)
        index = self.make_index(plan, ["k"])
        ctx = make_ctx(cluster)
        with pytest.raises(IndexLookupError) as err:
            index.lookup("k", ctx)
        assert not isinstance(err.value, TransientLookupError)
        assert "after 4 attempts" in str(err.value)
        assert index.lookups_failed == 1
        assert index.lookups_retried == 3
        assert ctx.counters.get("fault", "lookups_failed") == 1

    def test_data_errors_not_retried(self, cluster):
        plan = FaultPlan(seed=3)  # plan attached, no faults injected
        index = MappingIndex("m", {}, strict=True).set_fault_plan(plan, self.POLICY)
        with pytest.raises(IndexLookupError):
            index.lookup("missing", make_ctx(cluster))
        assert index.lookups_retried == 0

    def test_reset_accounting_clears_fault_counters(self, cluster):
        plan = FaultPlan(seed=3, lookup_failure_rate=1.0)
        index = self.make_index(plan, ["k"])
        with pytest.raises(IndexLookupError):
            index.lookup("k", make_ctx(cluster))
        index.reset_accounting()
        assert index.lookups_retried == 0
        assert index.lookups_failed == 0
        assert index.failovers == 0


# ----------------------------------------------------------------------
# Replica failover in the KV store
# ----------------------------------------------------------------------
class TestKVStoreFailover:
    POLICY = RetryPolicy(max_attempts=4, base_backoff=0.01, attempt_timeout=0.05)

    def loaded_store(self, cluster, plan):
        kv = DistributedKVStore("kv", cluster, num_partitions=8, replication=2)
        for i in range(64):
            kv.put(f"k{i}", i)
        return kv.set_fault_plan(plan, self.POLICY)

    def test_dead_replica_fails_over(self, paper_cluster, cluster):
        plan = FaultPlan(dead_hosts=("node00",))
        kv = self.loaded_store(paper_cluster, plan)
        ctx = make_ctx(cluster)
        for i in range(64):
            assert kv.lookup(f"k{i}", ctx) == [i]
        assert kv.failovers > 0
        assert kv.lookups_failed == 0
        assert ctx.counters.get("fault", "failovers") == kv.failovers

    def test_dead_hosts_dropped_from_hosts_for_key(self, paper_cluster):
        plan = FaultPlan(dead_hosts=("node00",))
        kv = self.loaded_store(paper_cluster, plan)
        for i in range(64):
            hosts = kv.hosts_for_key(f"k{i}")
            assert "node00" not in hosts
            assert hosts, "replication=2 must leave a live replica"

    def test_all_replicas_dead_is_terminal(self, cluster):
        # 4-node cluster, replication=2: killing both replicas of some
        # partition makes its keys unreachable even after retries.
        kv = DistributedKVStore("kv", cluster, num_partitions=4, replication=2)
        kv.put("k0", 0)
        partition = kv.partition_scheme.partition_of("k0")
        replicas = kv.partition_scheme.locations(partition)
        kv.set_fault_plan(FaultPlan(dead_hosts=tuple(replicas)), self.POLICY)
        ctx = make_ctx(cluster)
        with pytest.raises(IndexLookupError):
            kv.lookup("k0", ctx)
        assert kv.lookups_failed == 1

    def test_outage_window_recovers_via_retries(self, paper_cluster, cluster):
        kv = DistributedKVStore("kv", paper_cluster, num_partitions=4)
        kv.put("k0", 0)
        partition = kv.partition_scheme.partition_of("k0")
        plan = FaultPlan(
            partition_outages=[
                PartitionOutage("kv", partition, first_probe=0, last_probe=1)
            ]
        )
        kv.set_fault_plan(plan, self.POLICY)
        ctx = make_ctx(cluster)
        # Two probes hit the window, the third succeeds.
        assert kv.lookup("k0", ctx) == [0]
        assert kv.lookups_retried == 2
        assert ctx.counters.get("fault", "lookups_retried") == 2


# ----------------------------------------------------------------------
# Scheduler fault awareness
# ----------------------------------------------------------------------
class TestSchedulerFaults:
    def test_down_hosts_removed_from_pool(self, cluster):
        sched = SlotScheduler(cluster, "map", down_hosts=("node00",))
        assert sched.num_slots == cluster.total_map_slots - 2
        assert all(s.host != "node00" for s in sched.slots)

    def test_all_hosts_down_rejected(self, cluster):
        hosts = [n.hostname for n in cluster.nodes]
        with pytest.raises(SchedulingError):
            SlotScheduler(cluster, "map", down_hosts=hosts)

    def test_dead_allowed_hosts_degrade_to_live_pool(self, cluster):
        sched = SlotScheduler(cluster, "map", down_hosts=("node00",))
        slot = sched.acquire(allowed_hosts=["node00"])
        assert slot.host != "node00"

    def test_live_allowed_hosts_still_hard(self, cluster):
        sched = SlotScheduler(cluster, "map", down_hosts=("node00",))
        with pytest.raises(SchedulingError):
            sched.acquire(allowed_hosts=["nodeXX"])

    def test_avoid_hosts_soft(self, cluster):
        sched = SlotScheduler(cluster, "map")
        slot = sched.acquire(avoid_hosts=["node00"])
        assert slot.host != "node00"
        all_hosts = [n.hostname for n in cluster.nodes]
        # Avoiding everything would leave no candidates: ignored.
        assert sched.acquire(avoid_hosts=all_hosts) is not None


# ----------------------------------------------------------------------
# Task crashes and re-execution
# ----------------------------------------------------------------------
class TestTaskRetry:
    def wordcount(self, **overrides):
        conf = JobConf(
            name="wc",
            input_paths=["/in"],
            output_path="/out",
            map_chain=[FnMapper(lambda k, v: [(w, 1) for w in v.split()])],
            reducer=FnReducer(lambda k, vs: [(k, sum(vs))]),
            num_reduce_tasks=3,
        )
        for key, value in overrides.items():
            setattr(conf, key, value)
        return conf

    @pytest.fixture
    def inputs(self, dfs):
        dfs.write("/in", [(i, f"alpha beta{i % 7} pad{i}") for i in range(1500)])

    def test_crashed_map_task_retried(self, cluster, dfs, inputs):
        clean = JobRunner(cluster, dfs).run(self.wordcount())
        plan = FaultPlan(task_crashes=[TaskCrash("wc-m0000", 10)])
        res = JobRunner(cluster, dfs, fault_plan=plan).run(self.wordcount())
        assert sorted(res.output) == sorted(clean.output)
        assert res.counters.get("fault", "tasks_retried") == 1
        # The crashed attempt may hide in slot slack, but can never make
        # the job faster.
        assert res.sim_time >= clean.sim_time
        first = next(r for r in res.map_runs if r.task_id == "wc-m0000")
        assert first.duration > 0

    def test_crashed_reduce_task_retried(self, cluster, dfs, inputs):
        clean = JobRunner(cluster, dfs).run(self.wordcount())
        plan = FaultPlan(task_crashes=[TaskCrash("wc-r0001", 5)])
        res = JobRunner(cluster, dfs, fault_plan=plan).run(self.wordcount())
        assert sorted(res.output) == sorted(clean.output)
        assert res.counters.get("fault", "tasks_retried") == 1
        assert res.sim_time >= clean.sim_time

    def test_persistent_crash_fails_job(self, cluster, dfs, inputs):
        plan = FaultPlan(task_crashes=[TaskCrash("wc-m0000", 10, attempts=99)])
        with pytest.raises(DataFlowError):
            JobRunner(cluster, dfs, fault_plan=plan).run(self.wordcount())

    def test_straggler_slows_job(self, cluster, dfs, inputs):
        clean = JobRunner(cluster, dfs).run(self.wordcount())
        plan = FaultPlan(straggler_factors={"node00": 4.0})
        res = JobRunner(cluster, dfs, fault_plan=plan).run(self.wordcount())
        assert sorted(res.output) == sorted(clean.output)
        assert res.sim_time > clean.sim_time

    def test_dead_host_runs_nothing(self, cluster, dfs, inputs):
        plan = FaultPlan(dead_hosts=("node01",))
        res = JobRunner(cluster, dfs, fault_plan=plan).run(self.wordcount())
        hosts = {r.node_host for r in res.map_runs} | {
            r.node_host for r in res.reduce_runs
        }
        assert "node01" not in hosts

    def test_no_plan_unchanged(self, cluster, dfs, inputs):
        a = JobRunner(cluster, dfs).run(self.wordcount())
        b = JobRunner(cluster, dfs, fault_plan=None).run(self.wordcount())
        assert a.sim_time == b.sim_time
        assert sorted(a.output) == sorted(b.output)
