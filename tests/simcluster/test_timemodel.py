"""Unit tests for the time model."""

import pytest

from repro.common.units import MB
from repro.simcluster.timemodel import TimeModel


@pytest.fixture
def tm():
    return TimeModel()


class TestDefaults:
    def test_network_is_one_gbps(self, tm):
        assert tm.network_bandwidth == 125 * MB

    def test_replication_three(self, tm):
        assert tm.dfs_replication == 3


class TestTransfer:
    def test_transfer_time_linear(self, tm):
        assert tm.transfer_time(250 * MB) == pytest.approx(2.0)

    def test_zero_bytes_free(self, tm):
        assert tm.transfer_time(0) == 0.0

    def test_disk_read(self, tm):
        assert tm.disk_read_time(100 * MB) == pytest.approx(1.0)


class TestDfsCosts:
    def test_store_includes_replication_network(self, tm):
        t = tm.dfs_store_time(100 * MB)
        expected = 1.0 + 2 * (100 / 125)
        assert t == pytest.approx(expected)

    def test_retrieve_local_is_disk_only(self, tm):
        assert tm.dfs_retrieve_time(100 * MB, local=True) == pytest.approx(1.0)

    def test_retrieve_remote_adds_network(self, tm):
        local = tm.dfs_retrieve_time(100 * MB, local=True)
        remote = tm.dfs_retrieve_time(100 * MB, local=False)
        assert remote > local
        assert remote - local == pytest.approx(tm.transfer_time(100 * MB))

    def test_f_combines_store_and_retrieve(self, tm):
        f = tm.dfs_cost_per_byte
        assert f == pytest.approx(
            tm.dfs_store_time(1) + tm.dfs_retrieve_time(1, local=True)
        )


class TestLookupCosts:
    def test_remote_lookup_includes_transfer_and_service(self, tm):
        t = tm.remote_lookup_time(100, 900, 1e-3)
        assert t == pytest.approx(1000 / tm.lookup_bandwidth + 1e-3)

    def test_lookup_bandwidth_below_link_bandwidth(self, tm):
        # per-request throughput never exceeds the bulk link rate
        assert tm.lookup_bandwidth <= tm.network_bandwidth

    def test_remote_lookup_includes_latency(self):
        tm = TimeModel(network_latency=2e-3)
        base = TimeModel()
        assert tm.remote_lookup_time(8, 64, 1e-3) == pytest.approx(
            base.remote_lookup_time(8, 64, 1e-3) + 2e-3
        )

    def test_local_lookup_is_service_only(self, tm):
        assert tm.local_lookup_time(2e-3) == 2e-3

    def test_local_cheaper_than_remote(self, tm):
        assert tm.local_lookup_time(1e-3) < tm.remote_lookup_time(8, 1024, 1e-3)

    def test_cpu_time_scales_with_records_and_bytes(self, tm):
        assert tm.cpu_time(1000) == pytest.approx(1000 * tm.cpu_per_record)
        assert tm.cpu_time(0, 1e6) == pytest.approx(1e6 * tm.cpu_per_byte)


class TestImmutability:
    def test_frozen(self, tm):
        with pytest.raises(Exception):
            tm.network_bandwidth = 1.0
