"""Shared fixtures: a small cluster + DFS pair sized so jobs run in a
handful of task waves (fast, yet exercising the scheduler), plus a
ready-made EFind job environment used across the core tests."""

from dataclasses import dataclass
from typing import Callable

import pytest

from repro.core.accessor import IndexAccessor
from repro.core.ejobconf import IndexJobConf
from repro.core.operator import IndexOperator
from repro.core.runner import EFindRunner
from repro.dfs.filesystem import DistributedFileSystem
from repro.indices.kvstore import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer
from repro.simcluster.cluster import Cluster


class UserCityOperator(IndexOperator):
    """Test operator: (user, payload) record -> (city, payload)."""

    def pre_process(self, key, value, index_input):
        user, payload = value
        index_input.put(0, user)
        return key, payload

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        collector.collect(cities[0] if cities else "unknown", value)


@dataclass
class EFindEnv:
    """A loaded environment for EFind integration tests."""

    cluster: Cluster
    dfs: DistributedFileSystem
    kv: DistributedKVStore
    num_records: int
    num_users: int
    make_job: Callable[..., IndexJobConf]

    def runner(self, **kwargs) -> EFindRunner:
        return EFindRunner(self.cluster, self.dfs, **kwargs)

    def expected_total(self) -> int:
        return self.num_records


def _count_reduce(key, values):
    yield (key, len(values))


def _sum_reduce(key, values):
    yield (key, sum(values))


class TailCityOperator(IndexOperator):
    """Tail-placement variant: looks up the reduce-output key (a user)
    and re-keys the count by city."""

    def pre_process(self, key, value, index_input):
        index_input.put(0, key)
        return key, value

    def post_process(self, key, value, index_output, collector):
        cities = index_output.get(0).get_all()
        collector.collect(cities[0] if cities else "unknown", value)


@pytest.fixture
def efind_env(paper_cluster, paper_dfs):
    """8k records with 400 duplicate-heavy user keys over a KV index --
    enough redundancy that every strategy is distinguishable."""
    import random

    rng = random.Random(13)
    num_records, num_users = 8000, 400
    # ~170-byte records -> ~40 splits over 24 map slots: two waves, so
    # the adaptive optimizer has remaining work after its first check.
    records = [
        (i, (f"user{rng.randrange(num_users):04d}", "x" * 150))
        for i in range(num_records)
    ]
    paper_dfs.write("/in/events", records)
    # 20 ms per lookup: expensive enough that a mid-job plan change pays
    # for itself (the adaptive tests rely on this).
    kv = DistributedKVStore("profiles", paper_cluster, service_time=20e-3)
    for u in range(num_users):
        kv.put_unique(f"user{u:04d}", f"city{u % 25:02d}")

    def make_job(name, placement="head", reduce_tasks=8):
        job = IndexJobConf(name)
        job.set_input_paths("/in/events")
        job.set_output_path(f"/out/{name}")
        if placement in ("head", "body"):
            op = UserCityOperator("city-op").add_index(IndexAccessor(kv))
            job.set_mapper(FnMapper(lambda k, v: [(k, v)], "ident"))
            job.set_reducer(
                FnReducer(_count_reduce, "count"), num_reduce_tasks=reduce_tasks
            )
            if placement == "head":
                job.add_head_index_operator(op)
            else:
                job.add_body_index_operator(op)
        elif placement == "tail":
            op = TailCityOperator("city-tail-op").add_index(IndexAccessor(kv))
            job.set_mapper(FnMapper(lambda k, v: [(v[0], 1)], "by-user"))
            job.set_reducer(
                FnReducer(_sum_reduce, "sum"), num_reduce_tasks=reduce_tasks
            )
            job.add_tail_index_operator(op)
        else:
            raise ValueError(placement)
        return job

    return EFindEnv(
        cluster=paper_cluster,
        dfs=paper_dfs,
        kv=kv,
        num_records=num_records,
        num_users=num_users,
        make_job=make_job,
    )


@pytest.fixture
def cluster():
    return Cluster(num_nodes=4, map_slots_per_node=2, reduce_slots_per_node=2)


@pytest.fixture
def dfs(cluster):
    return DistributedFileSystem(cluster, block_size=8 * 1024)


@pytest.fixture
def paper_cluster():
    """The paper's 12-node setup (fewer slots to get multiple waves at
    simulation scale)."""
    return Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)


@pytest.fixture
def paper_dfs(paper_cluster):
    return DistributedFileSystem(paper_cluster, block_size=32 * 1024)
