#!/usr/bin/env python
"""Index nested-loop joins on MapReduce: TPC-H Q3.

Scans LineItem (the main input) and joins it against indices on Orders
and Customer -- the Section 5 "index-based joins" application. Shows
how differently the four strategies behave on the same query, and that
EFind's optimizer picks the winner (the lookup cache: one order's line
items sit next to each other, so Orders lookups repeat back to back).

Run:  python examples/tpch_q3_join.py
"""

from repro import Cluster, DistributedFileSystem, EFindRunner, Strategy, TimeModel
from repro.workloads import tpch

cluster = Cluster(
    num_nodes=12,
    map_slots_per_node=2,
    reduce_slots_per_node=2,
    time_model=TimeModel(job_startup_time=0.5, task_startup_time=0.03),
)
dfs = DistributedFileSystem(cluster, block_size=24 * 1024)

print("Generating TPC-H data (scaled down) ...")
data = tpch.generate(tpch.TpchConfig(sf=0.002))
tpch.write_lineitem(dfs, "/tpch/lineitem", data)
indexes = tpch.build_indexes(cluster, data, service_time=4e-3)
print(
    f"  {len(data.lineitem)} lineitems, {len(data.orders)} orders, "
    f"{len(data.customer)} customers"
)

runner = EFindRunner(cluster, dfs)
reference = tpch.reference_q3(data)

print("\nTPC-H Q3 as an EFind index nested-loop join:")
for strategy in (Strategy.BASELINE, Strategy.CACHE, Strategy.REPART):
    indexes.reset_accounting()
    job = tpch.make_q3_job(
        f"q3-{strategy.value}", "/tpch/lineitem", f"/out/q3-{strategy.value}", indexes
    )
    result = runner.run(
        job, mode="forced", forced_strategy=strategy, extra_job_targets=["head0"]
    )
    got = dict(result.output)
    assert set(got) == set(reference), "join produced wrong groups!"
    print(
        f"  {strategy.value:8s}: {result.sim_time:6.2f}s, "
        f"{indexes.orders.lookups_served:6d} orders lookups, "
        f"{indexes.customer.lookups_served:5d} customer lookups"
    )

optimized = runner.run(
    tpch.make_q3_job("q3-optimized", "/tpch/lineitem", "/out/q3-opt", indexes),
    mode="static",
)
print(
    f"  optimized: {optimized.sim_time:6.2f}s  "
    f"(EFind chose: {optimized.plan.describe()})"
)

print(f"\nQ3 answer: {len(reference)} groups, e.g.:")
for group, revenue in sorted(reference.items())[:3]:
    orderkey, orderdate, priority = group
    print(f"  order {orderkey} ({orderdate}): revenue {revenue:,.2f}")
