#!/usr/bin/env python
"""Quickstart: your first EFind-enhanced MapReduce job.

Scenario: a click-event stream whose records carry a user id, and a
distributed key-value index mapping user ids to their home country. We
count clicks per country -- a classic "selectively access a side data
source" job that is painful in vanilla MapReduce and three small classes
in EFind.

Run:  python examples/quickstart.py
"""

import random

from repro import Cluster, DistributedFileSystem, EFindRunner, IndexJobConf, Strategy
from repro.core import IndexAccessor, IndexOperator
from repro.indices import DistributedKVStore
from repro.mapreduce.api import FnMapper, FnReducer

# ----------------------------------------------------------------------
# 1. A simulated 12-node cluster with an HDFS-like file system.
# ----------------------------------------------------------------------
cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
dfs = DistributedFileSystem(cluster, block_size=32 * 1024)

# ----------------------------------------------------------------------
# 2. The main input: 20k click events, many clicks per user.
# ----------------------------------------------------------------------
rng = random.Random(7)
NUM_USERS = 800
events = [
    (event_id, (f"user{rng.randrange(NUM_USERS):04d}", f"/item/{rng.randrange(500)}"))
    for event_id in range(20_000)
]
dfs.write("/data/clicks", events)

# ----------------------------------------------------------------------
# 3. The index: a Cassandra-like distributed KV store, user -> country.
# ----------------------------------------------------------------------
COUNTRIES = ("BR", "CN", "DE", "IN", "US")
profiles = DistributedKVStore("user-profiles", cluster, service_time=2e-3)
for u in range(NUM_USERS):
    profiles.put_unique(f"user{u:04d}", COUNTRIES[u % len(COUNTRIES)])


# ----------------------------------------------------------------------
# 4. The EFind IndexOperator: how THIS job uses the index.
#    pre_process extracts the lookup key; post_process combines the
#    result back into the record stream.
# ----------------------------------------------------------------------
class CountryLookupOperator(IndexOperator):
    def pre_process(self, key, value, index_input):
        user, url = value
        index_input.put(0, user)  # one lookup key for index #0
        return key, url  # drop the user id, keep the URL

    def post_process(self, key, value, index_output, collector):
        countries = index_output.get(0).get_all()
        country = countries[0] if countries else "??"
        collector.collect(country, value)


# ----------------------------------------------------------------------
# 5. Configure the job: the operator goes BEFORE Map (a "head" operator,
#    like the user-profile lookup in the paper's Example 2.1).
# ----------------------------------------------------------------------
job = IndexJobConf("click-countries")
job.set_input_paths("/data/clicks")
job.set_output_path("/out/click-countries")
job.add_head_index_operator(
    CountryLookupOperator("country-lookup").add_index(IndexAccessor(profiles))
)
job.set_mapper(FnMapper(lambda country, url: [(country, 1)], "one-per-click"))
job.set_reducer(FnReducer(lambda country, ones: [(country, sum(ones))], "sum"),
                num_reduce_tasks=6)

# ----------------------------------------------------------------------
# 6. Run it three ways and compare.
# ----------------------------------------------------------------------
runner = EFindRunner(cluster, dfs)

baseline = runner.run(job, mode="forced", forced_strategy=Strategy.BASELINE)
print(f"baseline strategy : {baseline.sim_time:6.2f} simulated seconds "
      f"({profiles.lookups_served} index lookups)")

profiles.reset_accounting()
job2 = IndexJobConf("click-countries-opt")
job2.set_input_paths("/data/clicks").set_output_path("/out/cc-opt")
job2.add_head_index_operator(
    CountryLookupOperator("country-lookup").add_index(IndexAccessor(profiles))
)
job2.set_mapper(FnMapper(lambda c, u: [(c, 1)], "one-per-click"))
job2.set_reducer(FnReducer(lambda c, o: [(c, sum(o))], "sum"), num_reduce_tasks=6)

optimized = runner.run(job2, mode="static")  # uses stats from the first run
print(f"optimized (static): {optimized.sim_time:6.2f} simulated seconds "
      f"({profiles.lookups_served} index lookups) "
      f"-> plan {optimized.plan.describe()}")

assert sorted(baseline.output) == sorted(optimized.output)
print("\nClicks per country:")
for country, count in sorted(optimized.output):
    print(f"  {country}: {count}")
print(f"\nSpeedup from EFind's optimizer: "
      f"{baseline.sim_time / optimized.sim_time:.2f}x")
