#!/usr/bin/env python
"""Location-based analysis: k-nearest-neighbour join over 2-D points.

Set A (queries) is the MapReduce input; set B is indexed by a grid of
R*-trees, 4x8 cells over a US-like bounding box, each tree replicated
to three machines -- the paper's OSM setup. Because the spatial index
exposes its grid partition scheme, EFind can co-partition the queries
with the index and run lookups locally (the index-locality strategy).

Also runs the hand-tuned H-zkNNJ baseline on the same data for the
Figure 13 comparison.

Run:  python examples/spatial_knn.py
"""

import random

from repro import Cluster, DistributedFileSystem, EFindRunner, Strategy, TimeModel
from repro.workloads import hzknnj, knn, osm

cluster = Cluster(
    num_nodes=12,
    map_slots_per_node=2,
    reduce_slots_per_node=2,
    time_model=TimeModel(
        job_startup_time=0.5, task_startup_time=0.03, network_latency=2e-3
    ),
)
dfs = DistributedFileSystem(cluster, block_size=24 * 1024)

print("Generating clustered location data ...")
a_points = osm.generate_points(osm.OsmConfig(num_points=8_000, seed=1), "A")
b_points = osm.generate_points(osm.OsmConfig(num_points=8_000, seed=2), "B")
osm.write_points(dfs, "/geo/a", a_points)
osm.write_points(dfs, "/geo/b", b_points)

cfg = knn.KnnConfig(k=10, grid_x=4, grid_y=8, overlap=0.15)
print("Building the 4x8 grid of R*-trees over set B ...")
index = knn.build_spatial_index(cluster, b_points, cfg)

runner = EFindRunner(cluster, dfs)

print("\nEFind kNN join (k=10):")
for strategy in (Strategy.BASELINE, Strategy.IDXLOC):
    job = knn.make_knnj_job(
        f"knnj-{strategy.value}", "/geo/a", f"/out/knnj-{strategy.value}", index
    )
    result = runner.run(
        job, mode="forced", forced_strategy=strategy, extra_job_targets=["head0"]
    )
    print(f"  {strategy.value:8s}: {result.sim_time:6.2f} simulated seconds")
    neighbours = dict(result.output)

print("\nHand-tuned H-zkNNJ baseline (alpha=2 shifted z-order copies):")
hz = hzknnj.run_hzknnj(
    cluster, dfs, "/geo/a", "/geo/b", hzknnj.HzknnjConfig(k=10, alpha=2)
)
print(f"  H-zkNNJ : {hz.sim_time:6.2f} simulated seconds")

# Quality check against exact brute force on a sample.
sample = random.Random(0).sample(a_points, 100)
efind_recall = hz_recall = 0.0
for point, rid in sample:
    exact = set(knn.exact_knn(point, b_points, 10))
    efind_recall += len(exact & set(neighbours[rid])) / 10
    hz_recall += len(exact & set(hz.neighbours[rid])) / 10
print(
    f"\nrecall vs exact kNN (100 sampled queries): "
    f"EFind {efind_recall:.1f}%, H-zkNNJ {hz_recall:.1f}%"
)

point, rid = sample[0]
print(f"\nExample: query point {point} (id {rid})")
print(f"  EFind neighbours  : {neighbours[rid][:5]} ...")
print(f"  H-zkNNJ neighbours: {hz.neighbours[rid][:5]} ...")
