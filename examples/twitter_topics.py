#!/usr/bin/env python
"""Example 2.1 from the paper, end to end: spatio-temporal Twitter
topic analysis with three indices at three dataflow placements.

The computation (Section 2 / Figures 4-5):

1. look up each tweet's user in a **user profile index** -> city
   (head IndexOperator, before Map);
2. Map extracts keywords from the message;
3. a **knowledge-base service** (an ML-classifier-backed *dynamic*
   index with an infinite key space) turns keywords into a topic
   (body IndexOperator, between Map and Reduce);
4. Reduce computes the top-k topics per (city, day);
5. an **event database** enriches each group with important news events
   (tail IndexOperator, after Reduce).

Run:  python examples/twitter_topics.py
"""

from repro import Cluster, DistributedFileSystem, EFindRunner, Strategy
from repro.workloads import twitter

cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
dfs = DistributedFileSystem(cluster, block_size=32 * 1024)

cfg = twitter.TwitterConfig(num_tweets=8_000, num_users=1_000, topk=3)
twitter.generate_tweets(dfs, "/data/tweets", cfg)

profiles = twitter.build_user_profile_index(cluster, cfg)        # Cassandra-like
knowledge_base = twitter.build_knowledge_base()                  # dynamic index
events = twitter.build_event_database(cluster, cfg)              # event DB

# The job driver, mirroring the paper's Figure 5.
job = twitter.make_topic_job(
    "twitter-topics", "/data/tweets", "/out/topics",
    profiles, knowledge_base, events, cfg,
)

runner = EFindRunner(cluster, dfs)

# First, the naive plan (what hand-coded lookups in Map/Reduce give you).
baseline = runner.run(job, mode="forced", forced_strategy=Strategy.BASELINE)
print(f"baseline plan : {baseline.sim_time:6.2f} simulated seconds")

# Then let EFind optimize from the statistics the first run collected.
job2 = twitter.make_topic_job(
    "twitter-topics-opt", "/data/tweets", "/out/topics-opt",
    profiles, knowledge_base, events, cfg,
)
optimized = runner.run(job2, mode="static")
print(f"optimized plan: {optimized.sim_time:6.2f} simulated seconds")
print(f"chosen plan   : {optimized.plan.describe()}")
assert sorted(optimized.output) == sorted(baseline.output)

print("\nSample results (city, day) -> (top topics, events):")
for (city, day), (top, evts) in sorted(optimized.output)[:6]:
    topics = ", ".join(f"{t}x{n}" for t, n in top)
    print(f"  {city} day {day:2d}: {topics:42s} | {evts[0]}")

print(
    f"\n{len(optimized.output)} (city, day) groups; "
    f"speedup {baseline.sim_time / optimized.sim_time:.2f}x with zero code changes"
)
