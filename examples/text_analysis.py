#!/usr/bin/env python
"""Text analysis with two side indices (the paper's first motivating
application class).

Pipeline: documents -> [acronym dictionary lookup, head operator]
-> Map extracts per-document term frequencies -> [inverted-index
document-frequency lookup, body operator] -> Reduce picks each
document's highest TF-IDF term.

The Zipf-skewed vocabulary makes the inverted-index lookups extremely
repetitive -- watch the lookup cache wipe them out.

Run:  python examples/text_analysis.py
"""

from repro import Cluster, DistributedFileSystem, EFindRunner, Strategy
from repro.core import explain
from repro.workloads import textanalysis as ta

cluster = Cluster(num_nodes=12, map_slots_per_node=2, reduce_slots_per_node=2)
dfs = DistributedFileSystem(cluster, block_size=16 * 1024)

cfg = ta.TextConfig(num_documents=1_500, corpus_documents=600)
ta.generate_documents(dfs, "/docs", cfg)
acronyms = ta.build_acronym_dictionary(cluster)
background = ta.build_background_index(cfg)

runner = EFindRunner(cluster, dfs)

print("Naive plan (hand-coded lookups in Map/Reduce):")
background.reset_accounting()
baseline = runner.run(
    ta.make_top_term_job("text-base", "/docs", "/out/text-base",
                         acronyms, background, cfg),
    mode="forced",
    forced_strategy=Strategy.BASELINE,
)
print(f"  {baseline.sim_time:6.2f} simulated seconds, "
      f"{background.lookups_served} inverted-index lookups")

print("\nEFind-optimized plan (statistics from the run above):")
background.reset_accounting()
job = ta.make_top_term_job("text-opt", "/docs", "/out/text-opt",
                           acronyms, background, cfg)
optimized = runner.run(job, mode="static")
print(f"  {optimized.sim_time:6.2f} simulated seconds, "
      f"{background.lookups_served} inverted-index lookups")
assert sorted(optimized.output) == sorted(baseline.output)

print("\n" + explain(
    ta.make_top_term_job("text-explain", "/docs", "/out/text-x",
                         acronyms, background, cfg),
    runner=runner,
))

print("\nSample results (doc -> top term):")
for doc_id, (term, score) in sorted(optimized.output)[:5]:
    print(f"  doc {doc_id:4d}: {term!r} (score {score:.3f})")
print(f"\nSpeedup: {baseline.sim_time / optimized.sim_time:.2f}x")
